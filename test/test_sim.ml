(* Tests for the discrete-event simulation kernel. *)

open Sim

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_ordering () =
  let h = Heap.create ~cmp:compare () in
  List.iter (Heap.add h) [ 5; 1; 4; 1; 3; 9; 2 ];
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 3; 4; 5; 9 ] (drain [])

let test_heap_empty () =
  let h = Heap.create ~cmp:compare () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "pop" None (Heap.pop h);
  Alcotest.(check (option int)) "peek" None (Heap.peek h)

let test_heap_peek_does_not_remove () =
  let h = Heap.create ~cmp:compare () in
  Heap.add h 7;
  Alcotest.(check (option int)) "peek" (Some 7) (Heap.peek h);
  Alcotest.(check int) "size" 1 (Heap.size h)

let test_heap_clear () =
  let h = Heap.create ~cmp:compare () in
  List.iter (Heap.add h) [ 3; 1; 2 ];
  Heap.clear h;
  Alcotest.(check int) "size" 0 (Heap.size h)

let test_heap_capacity () =
  (* A capacity hint changes only when the array grows, never what comes
     out; zero capacity and a negative one are the edge cases. *)
  let h = Heap.create ~capacity:4 ~cmp:compare () in
  List.iter (Heap.add h) [ 9; 2; 7; 1; 8; 3 ];
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "sorted beyond the hint" [ 1; 2; 3; 7; 8; 9 ] (drain []);
  let h0 = Heap.create ~capacity:0 ~cmp:compare () in
  Heap.add h0 5;
  Alcotest.(check (option int)) "zero hint works" (Some 5) (Heap.pop h0);
  Alcotest.(check bool) "negative capacity rejected" true
    (try
       ignore (Heap.create ~capacity:(-1) ~cmp:compare ());
       false
     with Invalid_argument _ -> true)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare () in
      List.iter (Heap.add h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

let test_heap_exn_variants () =
  (* The non-allocating forms agree with the option ones and reject an
     empty heap instead of returning a sentinel. *)
  let h = Heap.create ~cmp:compare () in
  Alcotest.(check bool) "peek_exn empty raises" true
    (try
       ignore (Heap.peek_exn h);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "pop_exn empty raises" true
    (try
       ignore (Heap.pop_exn h);
       false
     with Invalid_argument _ -> true);
  List.iter (Heap.add h) [ 4; 2; 9; 2 ];
  Alcotest.(check int) "peek_exn = min" 2 (Heap.peek_exn h);
  Alcotest.(check int) "peek_exn leaves size" 4 (Heap.size h);
  let rec drain acc =
    if Heap.is_empty h then List.rev acc else drain (Heap.pop_exn h :: acc)
  in
  Alcotest.(check (list int)) "pop_exn drains sorted" [ 2; 2; 4; 9 ] (drain []);
  Alcotest.(check bool) "empty again" true (Heap.is_empty h)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Rng.int a 1_000_000 = Rng.int b 1_000_000 then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_rng_split_independent () =
  let parent = Rng.create 3 in
  let child = Rng.split parent in
  let xs = List.init 50 (fun _ -> Rng.int child 1000) in
  let ys = List.init 50 (fun _ -> Rng.int parent 1000) in
  Alcotest.(check bool) "child differs from parent" true (xs <> ys)

let test_rng_int_range () =
  let r = Rng.create 11 in
  for _ = 1 to 10_000 do
    let x = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_rng_float_range () =
  let r = Rng.create 13 in
  for _ = 1 to 10_000 do
    let x = Rng.float r 3.5 in
    Alcotest.(check bool) "in range" true (x >= 0. && x < 3.5)
  done

let test_rng_exponential_mean () =
  let r = Rng.create 17 in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:4.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean close to 4" true (Float.abs (mean -. 4.0) < 0.1)

let test_rng_gaussian_moments () =
  let r = Rng.create 19 in
  let n = 50_000 in
  let stats = Stats.Online.create () in
  for _ = 1 to n do
    Stats.Online.add stats (Rng.gaussian r ~mean:10. ~std:2.)
  done;
  Alcotest.(check bool) "mean" true (Float.abs (Stats.Online.mean stats -. 10.) < 0.05);
  Alcotest.(check bool) "std" true (Float.abs (Stats.Online.stddev stats -. 2.) < 0.05)

let test_rng_lognormal_mean_param () =
  let r = Rng.create 23 in
  let n = 100_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.lognormal_mean r ~mean:50. ~cv:0.5
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean parameterisation" true (Float.abs (mean -. 50.) < 1.0)

let test_rng_weighted_choice () =
  let r = Rng.create 29 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 30_000 do
    let v = Rng.weighted_choice r [ (1., "a"); (2., "b"); (7., "c") ] in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let get k = float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts k)) /. 30_000. in
  Alcotest.(check bool) "a ~ 10%" true (Float.abs (get "a" -. 0.1) < 0.02);
  Alcotest.(check bool) "c ~ 70%" true (Float.abs (get "c" -. 0.7) < 0.02)

let test_rng_sample_distinct () =
  let r = Rng.create 31 in
  let a = Array.init 20 (fun i -> i) in
  let s = Rng.sample r a 10 in
  Alcotest.(check int) "size" 10 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  let distinct = Array.for_all2 (fun _ _ -> true) s s in
  ignore distinct;
  for i = 1 to Array.length sorted - 1 do
    Alcotest.(check bool) "distinct" true (sorted.(i) <> sorted.(i - 1))
  done

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_online_stats () =
  let s = Stats.Online.create () in
  List.iter (Stats.Online.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  check_float "mean" 5.0 (Stats.Online.mean s);
  Alcotest.(check int) "count" 8 (Stats.Online.count s);
  check_float "min" 2. (Stats.Online.min s);
  check_float "max" 9. (Stats.Online.max s);
  (* Sample variance of the classic dataset: population var is 4, sample
     var is 32/7. *)
  Alcotest.(check (float 1e-9)) "variance" (32. /. 7.) (Stats.Online.variance s)

let test_percentile () =
  let values = [| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9.; 10. |] in
  check_float "median" 5.5 (Stats.percentile values 0.5);
  check_float "p0" 1.0 (Stats.percentile values 0.0);
  check_float "p100" 10.0 (Stats.percentile values 1.0)

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~buckets:10 in
  List.iter (Stats.Histogram.add h) [ -1.; 0.5; 0.7; 5.5; 9.9; 15. ];
  Alcotest.(check int) "count" 6 (Stats.Histogram.count h);
  let buckets = Stats.Histogram.bucket_counts h in
  let underflow = List.assoc neg_infinity buckets in
  Alcotest.(check int) "underflow" 1 underflow;
  let overflow = List.assoc 10. buckets in
  Alcotest.(check int) "overflow" 1 overflow;
  let first = List.assoc 0. buckets in
  Alcotest.(check int) "first bucket has 2" 2 first

(* ------------------------------------------------------------------ *)
(* Series *)

let test_series_bucket_sum () =
  let s = Series.create () in
  Series.add s ~time:0.5 1.;
  Series.add s ~time:0.9 1.;
  Series.add s ~time:1.5 1.;
  Series.add s ~time:3.2 1.;
  let buckets = Series.bucket_sum s ~start:0. ~stop:4. ~width:1. in
  Alcotest.(check int) "4 slices" 4 (Array.length buckets);
  check_float "slice0" 2. (snd buckets.(0));
  check_float "slice1" 1. (snd buckets.(1));
  check_float "slice2" 0. (snd buckets.(2));
  check_float "slice3" 1. (snd buckets.(3))

let test_series_monotonic_times () =
  let s = Series.create () in
  Series.add s ~time:1.0 5.;
  Alcotest.check_raises "backwards time" (Invalid_argument "Series.add: time went backwards")
    (fun () -> Series.add s ~time:0.5 1.)

let test_series_values_between () =
  let s = Series.create () in
  for i = 0 to 9 do
    Series.add s ~time:(float_of_int i) (float_of_int i)
  done;
  let vs = Series.values_between s ~start:3. ~stop:6. in
  Alcotest.(check (array (float 1e-9))) "window" [| 3.; 4.; 5. |] vs

let test_series_bucket_mean () =
  let s = Series.create () in
  Series.add s ~time:0.1 10.;
  Series.add s ~time:0.2 20.;
  Series.add s ~time:1.5 5.;
  let buckets = Series.bucket_mean s ~start:0. ~stop:2. ~width:1. in
  check_float "mean slice0" 15. (snd buckets.(0));
  check_float "mean slice1" 5. (snd buckets.(1))

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_sleep_ordering () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.spawn eng ~name:"a" (fun () ->
      Engine.sleep 2.0;
      log := ("a", Engine.now eng) :: !log);
  Engine.spawn eng ~name:"b" (fun () ->
      Engine.sleep 1.0;
      log := ("b", Engine.now eng) :: !log);
  Engine.run_all eng;
  Alcotest.(check (list (pair string (float 1e-9))))
    "b fires before a"
    [ ("b", 1.0); ("a", 2.0) ]
    (List.rev !log);
  Alcotest.(check (list string)) "no failures" []
    (List.map (fun (n, _, _) -> n) (Engine.failures eng))

let test_engine_same_time_fifo () =
  let eng = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule eng ~delay:1.0 (fun () -> log := i :: !log))
  done;
  Engine.run_all eng;
  Alcotest.(check (list int)) "schedule order preserved" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_cancel () =
  let eng = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule eng ~delay:1.0 (fun () -> fired := true) in
  Engine.cancel h;
  Engine.run_all eng;
  Alcotest.(check bool) "not fired" false !fired

let test_engine_run_until () =
  let eng = Engine.create () in
  let fired = ref [] in
  ignore (Engine.schedule eng ~delay:1.0 (fun () -> fired := 1 :: !fired));
  ignore (Engine.schedule eng ~delay:5.0 (fun () -> fired := 5 :: !fired));
  Engine.run eng ~until:3.0;
  Alcotest.(check (list int)) "only first" [ 1 ] !fired;
  Engine.run eng ~until:10.0;
  Alcotest.(check (list int)) "then second" [ 5; 1 ] !fired

let test_engine_nested_spawn () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.spawn eng (fun () ->
      Engine.sleep 1.0;
      Engine.spawn eng ~name:"child" (fun () ->
          Engine.sleep 1.0;
          log := ("child", Engine.now eng) :: !log);
      Engine.sleep 0.5;
      log := ("parent", Engine.now eng) :: !log);
  Engine.run_all eng;
  Alcotest.(check (list (pair string (float 1e-9))))
    "interleaving"
    [ ("parent", 1.5); ("child", 2.0) ]
    (List.rev !log)

let test_engine_suspend_resume () =
  let eng = Engine.create () in
  let waker = ref None in
  let result = ref 0 in
  Engine.spawn eng (fun () ->
      let v = Engine.suspend (fun wake -> waker := Some wake) in
      result := v);
  Engine.run_all eng;
  Alcotest.(check int) "still suspended" 0 !result;
  (match !waker with Some w -> w 42 | None -> Alcotest.fail "no waker");
  Engine.run_all eng;
  Alcotest.(check int) "resumed with value" 42 !result

let test_engine_double_wake_ignored () =
  let eng = Engine.create () in
  let count = ref 0 in
  Engine.spawn eng (fun () ->
      let _ = Engine.suspend (fun wake -> wake 1; wake 2) in
      incr count);
  Engine.run_all eng;
  Alcotest.(check int) "resumed once" 1 !count

let test_engine_failure_recorded () =
  let eng = Engine.create () in
  Engine.spawn eng ~name:"bad" (fun () -> failwith "boom");
  Engine.run_all eng;
  match Engine.failures eng with
  | [ ("bad", Failure msg, _) ] -> Alcotest.(check string) "message" "boom" msg
  | _ -> Alcotest.fail "expected one failure"

let test_engine_every () =
  let eng = Engine.create () in
  let times = ref [] in
  let h = Engine.every eng ~interval:1.0 (fun () -> times := Engine.now eng :: !times) in
  ignore (Engine.schedule eng ~delay:3.5 (fun () -> Engine.cancel h));
  Engine.run eng ~until:10.0;
  Alcotest.(check (list (float 1e-9))) "ticks" [ 1.; 2.; 3. ] (List.rev !times)

let test_engine_negative_sleep () =
  let eng = Engine.create () in
  Engine.spawn eng ~name:"neg" (fun () -> Engine.sleep (-1.0));
  Engine.run_all eng;
  Alcotest.(check int) "failure recorded" 1 (List.length (Engine.failures eng))

let test_engine_self_name () =
  let eng = Engine.create () in
  let seen = ref "" in
  Engine.spawn eng ~name:"proc-7" (fun () ->
      Engine.sleep 1.0;
      seen := Engine.self_name ());
  Engine.run_all eng;
  Alcotest.(check string) "name survives resume" "proc-7" !seen;
  Alcotest.(check string) "outside process" "" (Engine.self_name ())

let prop_engine_event_times_nondecreasing =
  QCheck.Test.make ~name:"events fire in nondecreasing time order" ~count:100
    QCheck.(list (float_bound_inclusive 100.))
    (fun delays ->
      let eng = Engine.create () in
      let times = ref [] in
      List.iter
        (fun d ->
          let d = Float.abs d in
          ignore (Engine.schedule eng ~delay:d (fun () -> times := Engine.now eng :: !times)))
        delays;
      Engine.run_all eng;
      let ts = List.rev !times in
      let rec nondecreasing = function
        | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
        | _ -> true
      in
      nondecreasing ts && List.length ts = List.length delays)

(* ------------------------------------------------------------------ *)
(* Resource.Sem *)

let run_with_sem ~capacity f =
  let eng = Engine.create () in
  let sem = Resource.Sem.create eng ~capacity () in
  f eng sem;
  Engine.run_all eng;
  Alcotest.(check int) "no process failures" 0 (List.length (Engine.failures eng));
  (eng, sem)

let test_sem_fast_path () =
  let _, sem =
    run_with_sem ~capacity:2 (fun eng sem ->
        Engine.spawn eng (fun () ->
            (match Resource.Sem.acquire sem ~n:1 () with
            | Resource.Acquired -> ()
            | Resource.Timed_out -> Alcotest.fail "should not time out");
            Alcotest.(check int) "in use" 1 (Resource.Sem.in_use sem)))
  in
  Alcotest.(check int) "still held" 1 (Resource.Sem.in_use sem)

let test_sem_blocking_and_release () =
  let order = ref [] in
  let _ =
    run_with_sem ~capacity:1 (fun eng sem ->
        Engine.spawn eng ~name:"first" (fun () ->
            ignore (Resource.Sem.acquire sem ~n:1 ());
            order := "first-acq" :: !order;
            Engine.sleep 5.0;
            Resource.Sem.release sem ~n:1;
            order := "first-rel" :: !order);
        Engine.spawn eng ~name:"second" ~delay:1.0 (fun () ->
            ignore (Resource.Sem.acquire sem ~n:1 ());
            order := ("second-acq@" ^ string_of_float (Engine.now eng)) :: !order))
  in
  Alcotest.(check (list string))
    "second waits for release"
    [ "first-acq"; "first-rel"; "second-acq@5." ]
    (List.rev !order)

let test_sem_timeout () =
  let result = ref None in
  let _ =
    run_with_sem ~capacity:1 (fun eng sem ->
        Engine.spawn eng (fun () ->
            ignore (Resource.Sem.acquire sem ~n:1 ());
            Engine.sleep 100.0;
            Resource.Sem.release sem ~n:1);
        Engine.spawn eng ~delay:1.0 (fun () ->
            result := Some (Resource.Sem.acquire sem ~timeout:3.0 ~n:1 ())))
  in
  (match !result with
  | Some Resource.Timed_out -> ()
  | _ -> Alcotest.fail "expected timeout")

let test_sem_timeout_counts () =
  let _, sem =
    run_with_sem ~capacity:1 (fun eng sem ->
        Engine.spawn eng (fun () ->
            ignore (Resource.Sem.acquire sem ~n:1 ());
            Engine.sleep 100.0;
            Resource.Sem.release sem ~n:1);
        for _ = 1 to 3 do
          Engine.spawn eng ~delay:1.0 (fun () ->
              ignore (Resource.Sem.acquire sem ~timeout:2.0 ~n:1 ()))
        done)
  in
  Alcotest.(check int) "timeouts" 3 (Resource.Sem.timeouts sem)

let test_sem_priority_order () =
  let order = ref [] in
  let _ =
    run_with_sem ~capacity:1 (fun eng sem ->
        Engine.spawn eng (fun () ->
            ignore (Resource.Sem.acquire sem ~n:1 ());
            Engine.sleep 10.0;
            Resource.Sem.release sem ~n:1);
        (* Low-priority waiter arrives first, high-priority second: the
           high-priority one must be served first. *)
        Engine.spawn eng ~name:"low" ~delay:1.0 (fun () ->
            ignore (Resource.Sem.acquire sem ~priority:5 ~n:1 ());
            order := "low" :: !order;
            Resource.Sem.release sem ~n:1);
        Engine.spawn eng ~name:"high" ~delay:2.0 (fun () ->
            ignore (Resource.Sem.acquire sem ~priority:1 ~n:1 ());
            order := "high" :: !order;
            Resource.Sem.release sem ~n:1))
  in
  Alcotest.(check (list string)) "priority order" [ "high"; "low" ] (List.rev !order)

let test_sem_no_overtaking () =
  (* A big request at the head must not be starved by small ones behind. *)
  let order = ref [] in
  let _ =
    run_with_sem ~capacity:4 (fun eng sem ->
        Engine.spawn eng (fun () ->
            ignore (Resource.Sem.acquire sem ~n:3 ());
            Engine.sleep 10.0;
            Resource.Sem.release sem ~n:3);
        Engine.spawn eng ~name:"big" ~delay:1.0 (fun () ->
            ignore (Resource.Sem.acquire sem ~n:4 ());
            order := "big" :: !order;
            Resource.Sem.release sem ~n:4);
        (* This small request fits in the free capacity (1 unit) but must
           wait behind "big". *)
        Engine.spawn eng ~name:"small" ~delay:2.0 (fun () ->
            ignore (Resource.Sem.acquire sem ~n:1 ());
            order := "small" :: !order;
            Resource.Sem.release sem ~n:1))
  in
  Alcotest.(check (list string)) "no overtaking" [ "big"; "small" ] (List.rev !order)

let test_sem_set_capacity_wakes () =
  let acquired = ref false in
  let _ =
    run_with_sem ~capacity:0 (fun eng sem ->
        Engine.spawn eng (fun () ->
            ignore (Resource.Sem.acquire sem ~n:1 ());
            acquired := true);
        ignore (Engine.schedule eng ~delay:1.0 (fun () -> Resource.Sem.set_capacity sem 1)))
  in
  Alcotest.(check bool) "woken by capacity increase" true !acquired

let test_sem_shrink_below_in_use () =
  let _, sem =
    run_with_sem ~capacity:2 (fun eng sem ->
        Engine.spawn eng (fun () ->
            ignore (Resource.Sem.acquire sem ~n:2 ());
            Resource.Sem.set_capacity sem 1;
            Alcotest.(check int) "available clamps to 0" 0 (Resource.Sem.available sem);
            Resource.Sem.release sem ~n:2))
  in
  Alcotest.(check int) "capacity" 1 (Resource.Sem.capacity sem);
  Alcotest.(check int) "available recovers" 1 (Resource.Sem.available sem)

let test_sem_try_acquire () =
  let _ =
    run_with_sem ~capacity:1 (fun eng sem ->
        Engine.spawn eng (fun () ->
            Alcotest.(check bool) "first try ok" true (Resource.Sem.try_acquire sem ~n:1);
            Alcotest.(check bool) "second try fails" false (Resource.Sem.try_acquire sem ~n:1);
            Resource.Sem.release sem ~n:1))
  in
  ()

let prop_sem_never_exceeds_capacity =
  QCheck.Test.make ~name:"semaphore never over-grants" ~count:60
    QCheck.(pair (int_range 1 5) (list (pair (int_range 1 3) (int_range 0 20))))
    (fun (capacity, jobs) ->
      let eng = Engine.create () in
      let sem = Resource.Sem.create eng ~capacity () in
      let max_seen = ref 0 in
      let violations = ref 0 in
      List.iter
        (fun (n, delay) ->
          let n = min n capacity in
          Engine.spawn eng ~delay:(float_of_int delay) (fun () ->
              match Resource.Sem.acquire sem ~timeout:50. ~n () with
              | Resource.Acquired ->
                  let u = Resource.Sem.in_use sem in
                  if u > capacity then incr violations;
                  if u > !max_seen then max_seen := u;
                  Engine.sleep 2.0;
                  Resource.Sem.release sem ~n
              | Resource.Timed_out -> ()))
        jobs;
      Engine.run_all eng;
      !violations = 0 && Engine.failures eng = [] && Resource.Sem.in_use sem = 0)

(* ------------------------------------------------------------------ *)
(* Resource.Waitq *)

let test_waitq_signal_fifo () =
  let eng = Engine.create () in
  let q = Resource.Waitq.create eng () in
  let order = ref [] in
  for i = 1 to 3 do
    Engine.spawn eng ~delay:(float_of_int i) (fun () ->
        ignore (Resource.Waitq.wait q ());
        order := i :: !order)
  done;
  ignore
    (Engine.schedule eng ~delay:10.0 (fun () ->
         Resource.Waitq.signal q;
         Resource.Waitq.signal q;
         Resource.Waitq.signal q));
  Engine.run_all eng;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !order)

let test_waitq_timeout () =
  let eng = Engine.create () in
  let q = Resource.Waitq.create eng () in
  let result = ref None in
  Engine.spawn eng (fun () -> result := Some (Resource.Waitq.wait q ~timeout:2.0 ()));
  Engine.run_all eng;
  (match !result with
  | Some Resource.Timed_out -> ()
  | _ -> Alcotest.fail "expected timeout");
  Alcotest.(check int) "queue empty" 0 (Resource.Waitq.queued q)

let test_waitq_broadcast () =
  let eng = Engine.create () in
  let q = Resource.Waitq.create eng () in
  let woken = ref 0 in
  for _ = 1 to 5 do
    Engine.spawn eng (fun () ->
        ignore (Resource.Waitq.wait q ());
        incr woken)
  done;
  ignore (Engine.schedule eng ~delay:1.0 (fun () -> Resource.Waitq.broadcast q));
  Engine.run_all eng;
  Alcotest.(check int) "all woken" 5 !woken

let test_engine_cancel_after_fire_noop () =
  let eng = Engine.create () in
  let count = ref 0 in
  let h = Engine.schedule eng ~delay:1.0 (fun () -> incr count) in
  Engine.run_all eng;
  Engine.cancel h;
  Alcotest.(check int) "fired once" 1 !count;
  Alcotest.(check bool) "cancelled flag set" true (Engine.cancelled h)

let test_engine_schedule_negative_rejected () =
  let eng = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      ignore (Engine.schedule eng ~delay:(-1.0) (fun () -> ())))

let test_engine_every_custom_start () =
  let eng = Engine.create () in
  let times = ref [] in
  ignore (Engine.every eng ~start:5.0 ~interval:2.0 (fun () ->
      times := Engine.now eng :: !times));
  Engine.run eng ~until:10.0;
  Alcotest.(check (list (float 1e-9))) "start then interval" [ 5.; 7.; 9. ]
    (List.rev !times)

let test_sem_release_overflow_rejected () =
  let eng = Engine.create () in
  let sem = Resource.Sem.create eng ~capacity:2 () in
  Engine.spawn eng (fun () ->
      ignore (Resource.Sem.acquire sem ~n:1 ());
      Resource.Sem.release sem ~n:2);
  Engine.run_all eng;
  Alcotest.(check int) "failure recorded" 1 (List.length (Engine.failures eng))

let test_sem_zero_units () =
  let eng = Engine.create () in
  let sem = Resource.Sem.create eng ~capacity:0 () in
  Engine.spawn eng (fun () ->
      match Resource.Sem.acquire sem ~n:0 () with
      | Resource.Acquired -> ()
      | Resource.Timed_out -> Alcotest.fail "zero units must not block");
  Engine.run_all eng;
  Alcotest.(check int) "no failures" 0 (List.length (Engine.failures eng))

let test_sem_priority_tie_is_fifo () =
  let eng = Engine.create () in
  let sem = Resource.Sem.create eng ~capacity:1 () in
  let order = ref [] in
  Engine.spawn eng (fun () ->
      ignore (Resource.Sem.acquire sem ~n:1 ());
      Engine.sleep 10.;
      Resource.Sem.release sem ~n:1);
  List.iter
    (fun (name, delay) ->
      Engine.spawn eng ~delay (fun () ->
          ignore (Resource.Sem.acquire sem ~priority:3 ~n:1 ());
          order := name :: !order;
          Resource.Sem.release sem ~n:1))
    [ ("first", 1.0); ("second", 2.0); ("third", 3.0) ];
  Engine.run_all eng;
  Alcotest.(check (list string)) "fifo among equal priorities"
    [ "first"; "second"; "third" ] (List.rev !order)

let test_waitq_signal_skips_timed_out () =
  let eng = Engine.create () in
  let q = Resource.Waitq.create eng () in
  let woken = ref [] in
  Engine.spawn eng (fun () ->
      match Resource.Waitq.wait q ~timeout:2.0 () with
      | Resource.Timed_out -> woken := "timeout" :: !woken
      | Resource.Acquired -> woken := "wrong" :: !woken);
  Engine.spawn eng ~delay:1.0 (fun () ->
      match Resource.Waitq.wait q () with
      | Resource.Acquired -> woken := "second" :: !woken
      | Resource.Timed_out -> ());
  (* Signal after the first waiter timed out: it must wake the second. *)
  ignore (Engine.schedule eng ~delay:5.0 (fun () -> Resource.Waitq.signal q));
  Engine.run_all eng;
  Alcotest.(check (list string)) "timed-out waiter skipped"
    [ "timeout"; "second" ] (List.rev !woken)

let test_rng_copy_same_stream () =
  let a = Rng.create 99 in
  ignore (Rng.int a 10);
  let b = Rng.copy a in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "copy continues identically" xs ys

let prop_rng_shuffle_is_permutation =
  QCheck.Test.make ~name:"shuffle permutes" ~count:100
    QCheck.(pair int (list int))
    (fun (seed, xs) ->
      let a = Array.of_list xs in
      Rng.shuffle (Rng.create seed) a;
      List.sort compare (Array.to_list a) = List.sort compare xs)

let test_engine_stress_many_events () =
  (* 200k events execute in order and in reasonable wall time. *)
  let eng = Engine.create () in
  let rng = Rng.create 424242 in
  let last = ref neg_infinity in
  let count = ref 0 in
  for _ = 1 to 200_000 do
    ignore
      (Engine.schedule eng ~delay:(Rng.float rng 1000.) (fun () ->
           let now = Engine.now eng in
           if now < !last then Alcotest.fail "time went backwards";
           last := now;
           incr count))
  done;
  Engine.run_all eng;
  Alcotest.(check int) "all executed" 200_000 !count

let test_engine_deterministic_processes () =
  (* Two engines with the same seed running a random process soup produce
     identical traces. *)
  let trace seed =
    let eng = Engine.create ~seed () in
    let rng = Rng.split (Engine.rng eng) in
    let sem = Resource.Sem.create eng ~capacity:2 () in
    let log = ref [] in
    for i = 1 to 30 do
      Engine.spawn eng ~name:(string_of_int i) (fun () ->
          Engine.sleep (Rng.float rng 5.);
          match Resource.Sem.acquire sem ~timeout:(Rng.float rng 20.) ~n:1 () with
          | Resource.Acquired ->
              Engine.sleep (Rng.float rng 3.);
              log := (i, Engine.now eng) :: !log;
              Resource.Sem.release sem ~n:1
          | Resource.Timed_out -> log := (-i, Engine.now eng) :: !log)
    done;
    Engine.run_all eng;
    !log
  in
  Alcotest.(check bool) "same seed, same trace" true (trace 7 = trace 7);
  Alcotest.(check bool) "different seed, different trace" true (trace 7 <> trace 8)

let suite =
  [
    ("heap ordering", `Quick, test_heap_ordering);
    ("heap empty", `Quick, test_heap_empty);
    ("heap peek", `Quick, test_heap_peek_does_not_remove);
    ("heap clear", `Quick, test_heap_clear);
    ("heap capacity hint", `Quick, test_heap_capacity);
    ("heap exn variants", `Quick, test_heap_exn_variants);
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng seeds differ", `Quick, test_rng_different_seeds);
    ("rng split independent", `Quick, test_rng_split_independent);
    ("rng int range", `Quick, test_rng_int_range);
    ("rng float range", `Quick, test_rng_float_range);
    ("rng exponential mean", `Slow, test_rng_exponential_mean);
    ("rng gaussian moments", `Slow, test_rng_gaussian_moments);
    ("rng lognormal mean", `Slow, test_rng_lognormal_mean_param);
    ("rng weighted choice", `Slow, test_rng_weighted_choice);
    ("rng sample distinct", `Quick, test_rng_sample_distinct);
    ("online stats", `Quick, test_online_stats);
    ("percentile", `Quick, test_percentile);
    ("histogram", `Quick, test_histogram);
    ("series bucket sum", `Quick, test_series_bucket_sum);
    ("series monotonic times", `Quick, test_series_monotonic_times);
    ("series values between", `Quick, test_series_values_between);
    ("series bucket mean", `Quick, test_series_bucket_mean);
    ("engine sleep ordering", `Quick, test_engine_sleep_ordering);
    ("engine same-time fifo", `Quick, test_engine_same_time_fifo);
    ("engine cancel", `Quick, test_engine_cancel);
    ("engine run until", `Quick, test_engine_run_until);
    ("engine nested spawn", `Quick, test_engine_nested_spawn);
    ("engine suspend/resume", `Quick, test_engine_suspend_resume);
    ("engine double wake ignored", `Quick, test_engine_double_wake_ignored);
    ("engine failure recorded", `Quick, test_engine_failure_recorded);
    ("engine every", `Quick, test_engine_every);
    ("engine negative sleep", `Quick, test_engine_negative_sleep);
    ("engine self name", `Quick, test_engine_self_name);
    ("sem fast path", `Quick, test_sem_fast_path);
    ("sem blocking and release", `Quick, test_sem_blocking_and_release);
    ("sem timeout", `Quick, test_sem_timeout);
    ("sem timeout counts", `Quick, test_sem_timeout_counts);
    ("sem priority order", `Quick, test_sem_priority_order);
    ("sem no overtaking", `Quick, test_sem_no_overtaking);
    ("sem set_capacity wakes", `Quick, test_sem_set_capacity_wakes);
    ("sem shrink below in-use", `Quick, test_sem_shrink_below_in_use);
    ("sem try_acquire", `Quick, test_sem_try_acquire);
    ("waitq signal fifo", `Quick, test_waitq_signal_fifo);
    ("engine cancel after fire", `Quick, test_engine_cancel_after_fire_noop);
    ("engine negative schedule", `Quick, test_engine_schedule_negative_rejected);
    ("engine every custom start", `Quick, test_engine_every_custom_start);
    ("sem release overflow", `Quick, test_sem_release_overflow_rejected);
    ("sem zero units", `Quick, test_sem_zero_units);
    ("sem priority tie fifo", `Quick, test_sem_priority_tie_is_fifo);
    ("waitq signal skips timed out", `Quick, test_waitq_signal_skips_timed_out);
    ("rng copy", `Quick, test_rng_copy_same_stream);
    ("engine stress 200k events", `Slow, test_engine_stress_many_events);
    ("engine deterministic processes", `Quick, test_engine_deterministic_processes);
    ("waitq timeout", `Quick, test_waitq_timeout);
    ("waitq broadcast", `Quick, test_waitq_broadcast);
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    QCheck_alcotest.to_alcotest prop_engine_event_times_nondecreasing;
    QCheck_alcotest.to_alcotest prop_sem_never_exceeds_capacity;
    QCheck_alcotest.to_alcotest prop_rng_shuffle_is_permutation;
  ]
