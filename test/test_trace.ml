(* Trace-based invariant tests: run whole simulated-server experiments with
   the ring-buffer trace attached, then re-derive the paper's admission
   invariants from the recorded event stream alone.

   This checks two things at once: that the gateways actually behave (no
   gate ever holds more compilations than its slots; waiters are served in
   priority-then-FIFO order), and that the trace is a faithful account of
   the run — a missing or misordered record shows up as a phantom
   violation. *)

let slots_of_config (config : Server.Config.t) =
  let table =
    List.map
      (fun (l : Qcore.Throttle_config.level) ->
        ( l.Qcore.Throttle_config.lname,
          Qcore.Throttle_config.slot_count l.Qcore.Throttle_config.slots
            ~cpus:config.Server.Config.cpus ))
      config.Server.Config.throttle.Qcore.Throttle_config.levels
  in
  fun gate ->
    match List.assoc_opt gate table with
    | Some n -> n
    | None -> Alcotest.failf "trace names unknown gateway %S" gate

let check_gateway_invariants label records ~slots =
  (match Obs.Analyze.holder_violations records ~slots with
  | [] -> ()
  | (gate, time, holders) :: _ as all ->
      Alcotest.failf
        "%s: %d holder violation(s); first: gate %s held by %d > %d slots at t=%.3f"
        label (List.length all) gate holders (slots gate) time);
  match Obs.Analyze.admission_violations records with
  | [] -> ()
  | (gate, admitted, passed_over, time) :: _ as all ->
      Alcotest.failf
        "%s: %d admission-order violation(s); first: gate %s admitted %s over \
         earlier waiter %s at t=%.3f"
        label (List.length all) gate admitted passed_over time

(* One fuzzed run: a fault schedule derived from the seed (reusing the
   chaos generator from the fuzz suite), trace attached, invariants
   re-derived from the trace. *)
let run_traced_schedule seed =
  let faults = Test_fuzz.schedule_of_seed seed in
  List.iter Faultsim.Fault.validate faults;
  let base =
    if seed mod 2 = 0 then Server.Config.resilient ()
    else Server.Config.default ()
  in
  let config = { base with Server.Config.seed; faults } in
  let trace = Obs.Trace.create () in
  let _r =
    Server.Experiment.run ~config ~trace ~clients:8 ~warmup:0. ~measure:150.
      ~slice:50. ()
  in
  let records = Obs.Trace.records trace in
  if Array.length records = 0 then
    Alcotest.failf "seed %d: experiment produced an empty trace" seed;
  check_gateway_invariants
    (Printf.sprintf "seed %d" seed)
    records ~slots:(slots_of_config config);
  (* The gateways were exercised, not just clean by vacuity: at least one
     admission must appear in the trace. *)
  let acquired =
    Array.exists
      (fun (r : Obs.Trace.record) ->
        match r.event with
        | Obs.Event.Gateway { phase = Obs.Event.Acquired; _ } -> true
        | _ -> false)
      records
  in
  if not acquired then
    Alcotest.failf "seed %d: no gateway admission in the trace" seed

let prop_gateway_invariants_hold =
  QCheck.Test.make
    ~name:"gateway slots and FIFO admission hold on fuzzed fault schedules"
    ~count:20
    QCheck.(int_range 0 10_000)
    (fun seed ->
      run_traced_schedule seed;
      true)

(* ------------------------------------------------------------------ *)
(* Golden expect test: the fixed-seed Figure 2 scenario's gateway-wait
   intervals — the flat segments of the paper's usage plot — must match
   the checked-in JSONL byte for byte. Trace emission consumes neither
   randomness nor simulation time, so this is fully deterministic. *)

let waits_jsonl records =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (w : Obs.Analyze.wait) ->
      Buffer.add_string buf
        (Printf.sprintf
           {|{"qid":"%s","gate":"%s","start":%.3f,"finish":%.3f,"outcome":"%s"}|}
           (Obs.Export.json_escape w.qid)
           (Obs.Export.json_escape w.gate)
           w.start w.finish
           (match w.outcome with
           | `Acquired -> "acquired"
           | `Timeout -> "timeout"
           | `Open -> "open"));
      Buffer.add_char buf '\n')
    (Obs.Analyze.gateway_waits records);
  Buffer.contents buf

(* [dune runtest] runs test cases in the test sandbox (where the (deps)
   copy lives); [dune exec test/test_main.exe] runs from the project
   root. Accept either. *)
let golden_path name =
  let candidates = [ name; Filename.concat "test" name ] in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.failf "golden file %s not found" name

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_figure2_waits_golden () =
  let trace = Obs.Trace.create () in
  let r = Server.Figure2.run ~trace () in
  Alcotest.(check int) "no process failures" 0 r.Server.Figure2.failures;
  let records = Obs.Trace.records trace in
  Alcotest.(check int) "nothing dropped" 0 (Obs.Trace.dropped trace);
  (* The scenario's own invariants, from the trace. *)
  check_gateway_invariants "figure2" records ~slots:(fun gate ->
      match List.assoc_opt gate Server.Figure2.ladder_slots with
      | Some n -> n
      | None -> Alcotest.failf "unknown figure2 gate %S" gate);
  let got = waits_jsonl records in
  let expected = read_file (golden_path "figure2_waits.golden") in
  if got <> expected then (
    (* Dump the actual stream so a legitimate behavior change can be
       reviewed and promoted to the new golden file. *)
    let oc = open_out "figure2_waits.actual" in
    output_string oc got;
    close_out oc;
    Alcotest.failf
      "figure2 gateway waits diverge from golden (%d vs %d bytes); actual \
       stream written to figure2_waits.actual"
      (String.length got) (String.length expected))

(* The blocking pattern of the paper's Figure 2 walk-through, asserted
   directly so the golden file is not the only reader-facing record: Q1
   blocks at the second gateway behind the background load; Q2 and Q3
   queue at the first gateway until it drains. *)
let test_figure2_blocking_shape () =
  let trace = Obs.Trace.create () in
  let r = Server.Figure2.run ~trace () in
  Alcotest.(check int) "no process failures" 0 r.Server.Figure2.failures;
  let waits = Obs.Analyze.gateway_waits (Obs.Trace.records trace) in
  let blocked qid gate =
    List.exists
      (fun (w : Obs.Analyze.wait) ->
        w.qid = qid && w.gate = gate
        && w.outcome = `Acquired
        && w.finish -. w.start > 1.)
      waits
  in
  Alcotest.(check bool) "Q1 blocks at the second gateway" true
    (blocked "Q1" "second");
  Alcotest.(check bool) "Q2 blocks at the first gateway" true
    (blocked "Q2" "first");
  Alcotest.(check bool) "Q3 blocks at the first gateway" true
    (blocked "Q3" "first");
  List.iter
    (fun (w : Obs.Analyze.wait) ->
      if w.outcome = `Timeout then
        Alcotest.failf "unexpected timeout: %s at %s" w.qid w.gate)
    waits

let suite =
  [
    QCheck_alcotest.to_alcotest prop_gateway_invariants_hold;
    ("figure2 waits match golden", `Slow, test_figure2_waits_golden);
    ("figure2 blocking shape", `Slow, test_figure2_blocking_shape);
  ]
