(* Remaining coverage: metrics, reporting helpers, bridge materialisation
   integrity, pretty-printers. *)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_recording () =
  let eng = Sim.Engine.create () in
  let m = Server.Metrics.create eng in
  Sim.Engine.spawn eng (fun () ->
      Sim.Engine.sleep 10.;
      Server.Metrics.record_completion m ~compile_s:5. ~exec_s:20.;
      Sim.Engine.sleep 10.;
      Server.Metrics.record_completion m ~compile_s:15. ~exec_s:40.;
      Server.Metrics.record_error m Health.Error.Insufficient_memory;
      Server.Metrics.record_error m Health.Error.Insufficient_memory;
      Server.Metrics.record_error m Health.Error.Memory_wait_timeout;
      Server.Metrics.record_cache_hit m;
      Server.Metrics.record_compile_peak m 1000);
  Sim.Engine.run_all eng;
  Alcotest.(check int) "completions" 2 (Server.Metrics.total_completions m ());
  Alcotest.(check int) "since t=15" 1 (Server.Metrics.total_completions m ~since:15. ());
  Alcotest.(check int) "oom" 2 (Server.Metrics.error_count m Health.Error.Insufficient_memory);
  Alcotest.(check int) "total errors" 3 (Server.Metrics.total_errors m);
  Alcotest.(check int) "cache hits" 1 (Server.Metrics.cache_hits m);
  Alcotest.(check (float 1e-9)) "compile mean" 10.
    (Sim.Stats.Online.mean (Server.Metrics.compile_time m));
  let slices = Server.Metrics.throughput m ~start:0. ~stop:30. ~width:10. in
  Alcotest.(check int) "3 slices" 3 (Array.length slices);
  Alcotest.(check (float 1e-9)) "slice 1" 1. (snd slices.(1));
  Alcotest.(check (float 1e-9)) "slice 2" 1. (snd slices.(2))

let test_metrics_memory_watch () =
  let eng = Sim.Engine.create () in
  let mgr = Dbmem.Manager.create ~total:(Dbmem.Units.mib 100) () in
  let clerk = Dbmem.Manager.create_clerk mgr "c" in
  let m = Server.Metrics.create eng in
  Server.Metrics.watch_memory m ~interval:1.0 [ ("c", clerk) ];
  Sim.Engine.spawn eng (fun () ->
      Sim.Engine.sleep 2.5;
      Dbmem.Manager.alloc_exn clerk (Dbmem.Units.mib 7));
  Sim.Engine.run eng ~until:5.5;
  match Server.Metrics.memory_series m with
  | [ ("c", series) ] ->
      Alcotest.(check int) "5 samples" 5 (Sim.Series.length series);
      let _, last = Option.get (Sim.Series.last series) in
      Alcotest.(check (float 1.)) "last sample sees the allocation"
        (float_of_int (Dbmem.Units.mib 7))
        last
  | _ -> Alcotest.fail "expected one series"

(* ------------------------------------------------------------------ *)
(* Report helpers *)

let test_sparkline () =
  Alcotest.(check string) "empty" "" (Server.Report.sparkline [||]);
  let s = Server.Report.sparkline [| 0.; 4.; 8. |] in
  (* Three glyphs: blank-ish, mid, full. *)
  Alcotest.(check bool) "nonempty" true (String.length s > 0);
  let full = "\xe2\x96\x88" in
  Alcotest.(check bool) "max maps to full block" true
    (String.length s >= 3
    && String.sub s (String.length s - 3) 3 = full)

let test_result_row_shape () =
  Alcotest.(check int) "header arity matches rows" 10
    (List.length Server.Report.result_header)

(* ------------------------------------------------------------------ *)
(* Bridge materialisation integrity *)

let test_materialize_referential_integrity () =
  let cat = Workload.Sales.catalog () in
  let inst = Optimizer.Bridge.materialize (Sim.Rng.create 3) cat ~scale:1e-5 ~cap:50 () in
  let fact = Optimizer.Bridge.table inst "sales" in
  let schema = Relation.Table.schema fact in
  List.iter
    (fun dim ->
      let dim_rows = Relation.Table.cardinality (Optimizer.Bridge.table inst dim) in
      let idx = Relation.Schema.index_of schema (dim ^ "_key") in
      Array.iter
        (fun row ->
          match Relation.Tuple.get row idx with
          | Relation.Value.Int fk ->
              Alcotest.(check bool)
                (Printf.sprintf "%s fk in [0, %d)" dim dim_rows)
                true
                (fk >= 0 && fk < dim_rows)
          | _ -> Alcotest.fail "fk not an int")
        (Relation.Table.rows fact))
    Workload.Sales.dimensions

let test_materialize_serial_pk () =
  let cat = Workload.Sales.catalog () in
  let inst = Optimizer.Bridge.materialize (Sim.Rng.create 4) cat ~scale:1e-5 ~cap:50 () in
  let customer = Optimizer.Bridge.table inst "customer" in
  let idx = Relation.Schema.index_of (Relation.Table.schema customer) "customer_key" in
  Array.iteri
    (fun i row ->
      match Relation.Tuple.get row idx with
      | Relation.Value.Int k -> Alcotest.(check int) "dense pk" i k
      | _ -> Alcotest.fail "pk not an int")
    (Relation.Table.rows customer)

let test_materialize_lists_tables () =
  let cat = Workload.Tpch.catalog () in
  let inst = Optimizer.Bridge.materialize (Sim.Rng.create 5) cat ~scale:1e-6 ~cap:20 () in
  Alcotest.(check int) "8 tables" 8 (List.length (Optimizer.Bridge.table_names inst));
  Alcotest.(check bool) "missing table rejected" true
    (try
       ignore (Optimizer.Bridge.table inst "nope");
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Pretty-printer smoke tests: they must not raise and must mention the
   key facts. *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
  scan 0

let test_pp_smoke () =
  let cat = Workload.Sales.catalog () in
  let s = Format.asprintf "%a" Optimizer.Catalog.pp cat in
  Alcotest.(check bool) "catalog pp mentions sales" true (contains s "sales");
  let cfg = Server.Config.default () in
  let s = Format.asprintf "%a" Server.Config.pp cfg in
  Alcotest.(check bool) "config pp mentions cpus" true (contains s "8 cpus");
  let rng = Sim.Rng.create 1 in
  let q =
    Workload.Template.instance rng (List.hd (Workload.Sales.templates ())) ~id:1
  in
  let card = Optimizer.Card.create cat q in
  let plan = Optimizer.Greedy.plan Optimizer.Cost.default card in
  let s = Format.asprintf "%a" Optimizer.Plan.pp plan in
  Alcotest.(check bool) "plan pp mentions a scan" true (contains s "Scan");
  let s = Format.asprintf "%a" Optimizer.Query.pp q in
  Alcotest.(check bool) "query pp mentions joins" true (contains s "joins");
  let h = Optimizer.Histogram.build [| 1; 2; 3 |] in
  let s = Format.asprintf "%a" Optimizer.Histogram.pp h in
  Alcotest.(check bool) "histogram pp" true (contains s "equi-depth")

let suite =
  [
    ("metrics recording", `Quick, test_metrics_recording);
    ("metrics memory watch", `Quick, test_metrics_memory_watch);
    ("sparkline", `Quick, test_sparkline);
    ("result row shape", `Quick, test_result_row_shape);
    ("materialize referential integrity", `Quick, test_materialize_referential_integrity);
    ("materialize serial pk", `Quick, test_materialize_serial_pk);
    ("materialize table list", `Quick, test_materialize_lists_tables);
    ("pretty-printer smoke", `Quick, test_pp_smoke);
  ]
