(* Sharded-mode tests: ring placement, the shard lifecycle state machine,
   fault-schedule shapes, submission-count conservation over fuzzed shard
   faults, bit-identity of the parallel fan-out, and the headline
   crash-failover retention bound. *)

let mib = Dbmem.Units.mib

(* A cheap cell: two shards, six clients, a short window. Sim time is
   free; the 64 MiB-per-shard validation floor sets the memory scale. *)
let small_cfg ?(shards = 2) ?(gateways = true) ?(hedge = false) ?(seed = 11)
    ?(schedule = Server.Shards.No_fault) () =
  {
    Server.Shards.c_shards = shards;
    c_clients = 6;
    c_variants = 8;
    c_think = 10.;
    c_warmup = 60.;
    c_measure = 240.;
    c_slice = 30.;
    c_total = mib 256 * shards;
    c_gateways = gateways;
    c_hedge = hedge;
    c_seed = seed;
    c_schedule = schedule;
  }

(* ------------------------------------------------------------------ *)
(* Consistent-hash ring *)

let make_shards eng n =
  Array.init n (fun i ->
      Server.Shard.create eng ~index:i
        ~name:(Printf.sprintf "shard%d" i)
        (Server.Config.default ())
        (Workload.Sales.catalog ()))

let test_ring_spreads_templates () =
  let eng = Sim.Engine.create ~seed:1 () in
  let n = 4 in
  let router = Server.Router.create eng (make_shards eng n) in
  let homes = Array.make n 0 in
  for i = 0 to 39 do
    let template = Printf.sprintf "p%03d" i in
    let prefs = Server.Router.preference router ~template in
    (* Every preference list is a permutation of all shard indices: the
       walk must offer every shard exactly once, home first. *)
    Alcotest.(check (list int))
      (template ^ " preference is a permutation")
      (List.init n Fun.id)
      (List.sort compare prefs);
    homes.(List.hd prefs) <- homes.(List.hd prefs) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "shard%d is home to some template" i)
        true (c > 0))
    homes

let test_ring_stable_under_health () =
  (* Placement is pure ring arithmetic: a template's preference order
     does not change when shards crash, so traffic snaps back to the
     home shard on rejoin with no rebalance step. *)
  let eng = Sim.Engine.create ~seed:1 () in
  let shards = make_shards eng 3 in
  let router = Server.Router.create eng shards in
  let before = Server.Router.preference router ~template:"p007" in
  Server.Shard.crash shards.(List.hd before) ~restart_delay:10.;
  Alcotest.(check (list int)) "preference unchanged by a crash" before
    (Server.Router.preference router ~template:"p007")

(* ------------------------------------------------------------------ *)
(* Shard lifecycle *)

let test_shard_lifecycle () =
  let eng = Sim.Engine.create ~seed:3 () in
  let cfg =
    { (Server.Config.default ()) with
      Server.Config.plan_cache_floor_bytes = mib 32 }
  in
  let sh =
    Server.Shard.create ~probation:30. eng ~index:0 ~name:"s0" cfg
      (Workload.Sales.catalog ())
  in
  Alcotest.(check string) "starts up" "up"
    (Server.Shard.lifecycle_name (Server.Shard.state sh));
  (* Warm the plan cache with one stable-qid query, then crash. *)
  let templates = Workload.Sales.parameterized_templates ~variants:2 () in
  let q =
    (List.hd templates).Workload.Template.instantiate (Sim.Rng.create 5) 0
  in
  Sim.Engine.spawn eng (fun () ->
      ignore (Server.Dbms.submit (Server.Shard.dbms sh) q));
  Sim.Engine.run eng ~until:500.;
  Alcotest.(check bool) "cache warmed before the crash" true
    (Plancache.Cache.bytes (Server.Dbms.plan_cache (Server.Shard.dbms sh)) > 0);
  (* The engine clock sits at the last executed event, not at [until]:
     anchor the timeline there. *)
  let t_crash = Sim.Engine.now eng in
  Server.Shard.crash sh ~restart_delay:50.;
  Alcotest.(check string) "down after crash" "down"
    (Server.Shard.lifecycle_name (Server.Shard.state sh));
  Alcotest.(check int) "plan cache flushed" 0
    (Plancache.Cache.bytes (Server.Dbms.plan_cache (Server.Shard.dbms sh)));
  (* A down shard refuses with the routing back-pressure code. *)
  (match Server.Shard.submit sh q with
  | Error { Health.Error.code = Health.Error.Shard_unavailable; _ } -> ()
  | _ -> Alcotest.fail "down shard accepted a query");
  Alcotest.(check int) "refusal counted" 1 (Server.Shard.refused sh);
  (* Restart delay passes: recovering; probation passes: up. *)
  Sim.Engine.run eng ~until:(t_crash +. 60.);
  Alcotest.(check string) "recovering after restart delay" "recovering"
    (Server.Shard.lifecycle_name (Server.Shard.state sh));
  Sim.Engine.run eng ~until:(t_crash +. 120.);
  Alcotest.(check string) "up after probation" "up"
    (Server.Shard.lifecycle_name (Server.Shard.state sh));
  Alcotest.(check int) "one crash counted" 1 (Server.Shard.crashes sh)

(* ------------------------------------------------------------------ *)
(* Fault schedules *)

let test_fault_schedules_validate () =
  let cfg4 = small_cfg ~shards:4 () in
  Alcotest.(check int) "no-fault is empty" 0
    (List.length (Server.Shards.faults_of cfg4));
  List.iter
    (fun schedule ->
      let specs =
        Server.Shards.faults_of { cfg4 with Server.Shards.c_schedule = schedule }
      in
      Alcotest.(check bool)
        (Server.Shards.schedule_name schedule ^ " yields specs")
        true (specs <> []);
      List.iter Faultsim.Fault.validate specs)
    [ Server.Shards.Crash_failover; Rolling_restart; Brownout ];
  (* Rolling restarts are staggered: the outage windows are disjoint, so
     at most one shard is ever down. *)
  let windows =
    Server.Shards.faults_of
      { cfg4 with Server.Shards.c_schedule = Server.Shards.Rolling_restart }
    |> List.map Faultsim.Fault.window
    |> List.sort compare
  in
  let rec disjoint = function
    | (_, stop) :: ((start, _) :: _ as rest) -> stop <= start && disjoint rest
    | _ -> true
  in
  Alcotest.(check bool) "rolling outages do not overlap" true (disjoint windows)

(* ------------------------------------------------------------------ *)
(* Conservation and accounting over fuzzed fault schedules *)

let check_conservation (o : Server.Shards.outcome) =
  let open Server.Shards in
  (* Router books balance: every submission ends ok or failed, nothing
     stays in flight after the drain. *)
  o.submitted = o.ok + o.failed
  && o.in_flight_at_stop = 0
  (* Clients saw exactly the router's totals: every router submission is
     a client attempt (a client that retries a rejected query submits
     again, so attempts — not distinct queries — are what conserve). *)
  && o.cl_attempts = o.submitted
  && o.cl_submitted <= o.cl_attempts
  && o.cl_succeeded = o.ok
  (* Rejections are a subset of failures; completions happened inside
     the measure window, so they cannot exceed total successes. *)
  && o.rejected <= o.failed
  && o.completed <= o.ok
  (* Every shard's intake is accounted: finished or lost, none vanish. *)
  && List.for_all
       (fun r -> r.sh_accepted = r.sh_finished + r.sh_lost)
       o.shard_results
  (* The arbiter never grants past the machine (one keepalive byte per
     pool is the documented slack). *)
  && o.max_budget_sum <= o.o_config.c_total + o.o_config.c_shards

let prop_conservation_under_shard_faults =
  QCheck.Test.make ~name:"shards: counts conserved over fuzzed fault schedules"
    ~count:8
    QCheck.(
      quad (int_range 0 3) (int_range 2 4) bool (int_range 1 1000))
    (fun (sched, shards, gateways, seed) ->
      let schedule =
        match sched with
        | 0 -> Server.Shards.No_fault
        | 1 -> Server.Shards.Crash_failover
        | 2 -> Server.Shards.Rolling_restart
        | _ -> Server.Shards.Brownout
      in
      let hedge = schedule = Server.Shards.Brownout in
      check_conservation
        (Server.Shards.run (small_cfg ~shards ~gateways ~hedge ~seed ~schedule ())))

(* ------------------------------------------------------------------ *)
(* Parallel fan-out determinism *)

let prop_shards_parallel_bit_identical =
  QCheck.Test.make ~name:"shards: jobs:1 = jobs:4, bit-identical outcomes"
    ~count:3
    QCheck.(pair (int_range 1 500) (int_range 0 1))
    (fun (seed, sched) ->
      let schedule =
        if sched = 0 then Server.Shards.No_fault else Server.Shards.Crash_failover
      in
      let cells =
        [
          small_cfg ~seed ~schedule ();
          small_cfg ~seed:(seed + 1) ~gateways:false ~schedule ();
        ]
      in
      let fingerprint outcomes = Marshal.to_string outcomes [ Marshal.No_sharing ] in
      let seq = Parallel.Pool.run ~jobs:1 Server.Shards.run cells in
      let par = Parallel.Pool.run ~jobs:4 Server.Shards.run cells in
      String.equal (fingerprint seq) (fingerprint par))

(* ------------------------------------------------------------------ *)
(* Crash-failover retention *)

let test_crash_failover_retention () =
  (* The acceptance bound: with gateways on, a 4-shard crash+restart run
     keeps at least 80% of its no-fault throughput — the survivors absorb
     the traffic and the rejoining shard rides out its recompilation
     storm behind the compile gateways. *)
  let base =
    {
      (small_cfg ~shards:4 ()) with
      Server.Shards.c_clients = 16;
      c_variants = 24;
      c_think = 20.;
      c_warmup = 120.;
      c_measure = 400.;
      c_slice = 40.;
      c_total = mib 4096;
      c_seed = 42;
    }
  in
  let no_fault = Server.Shards.run base in
  let crash =
    Server.Shards.run
      { base with Server.Shards.c_schedule = Server.Shards.Crash_failover }
  in
  Alcotest.(check bool) "baseline produced work" true
    (no_fault.Server.Shards.completed > 0);
  let crashed =
    List.find
      (fun r -> r.Server.Shards.sh_crashes > 0)
      crash.Server.Shards.shard_results
  in
  Alcotest.(check bool) "crashed shard recompiled on rejoin" true
    (crashed.Server.Shards.sh_recompiles > 0);
  Alcotest.(check bool) "crashed shard rejoined" true
    (crashed.Server.Shards.sh_final_state = "up"
    || crashed.Server.Shards.sh_final_state = "recovering");
  let retention =
    Server.Shards.retention ~fault:crash ~no_fault
  in
  (* Bound pinned by the seed audit (test/seed_audit.exe): across seeds
     1..20 this config's retention spans [0.877, 1.000], so 0.8 leaves
     real margin at every audited seed, not just this one. *)
  Alcotest.(check bool)
    (Printf.sprintf "retention %.2f >= 0.8" retention)
    true (retention >= 0.8);
  Alcotest.(check bool) "conservation holds in both cells" true
    (check_conservation no_fault && check_conservation crash)

let suite =
  [
    ("ring spreads templates", `Quick, test_ring_spreads_templates);
    ("ring stable under health changes", `Quick, test_ring_stable_under_health);
    ("shard lifecycle", `Quick, test_shard_lifecycle);
    ("fault schedules validate", `Quick, test_fault_schedules_validate);
    QCheck_alcotest.to_alcotest prop_conservation_under_shard_faults;
    QCheck_alcotest.to_alcotest prop_shards_parallel_bit_identical;
    ("crash failover retention", `Slow, test_crash_failover_retention);
  ]
