(* Unit tests for the observability subsystem: the ring-buffer trace
   recorder, the HDR-style histogram, JSON escaping in the exporters, and
   the trace analyzers that the invariant tests build on. *)

open Obs

(* ------------------------------------------------------------------ *)
(* Histogram                                                          *)

let test_hist_empty () =
  let h = Hist.create () in
  Alcotest.(check int) "count" 0 (Hist.count h);
  Alcotest.(check int) "min" 0 (Hist.min h);
  Alcotest.(check int) "max" 0 (Hist.max h);
  Alcotest.(check (float 1e-9)) "mean" 0. (Hist.mean h);
  Alcotest.(check int) "p50" 0 (Hist.percentile h 50.);
  Alcotest.(check string) "summary" "empty"
    (Format.asprintf "%a" Hist.pp_summary h)

let test_hist_single_sample () =
  let h = Hist.create () in
  Hist.add h 42;
  Alcotest.(check int) "count" 1 (Hist.count h);
  Alcotest.(check int) "min" 42 (Hist.min h);
  Alcotest.(check int) "max" 42 (Hist.max h);
  Alcotest.(check (float 1e-9)) "mean" 42. (Hist.mean h);
  List.iter
    (fun q ->
      Alcotest.(check int)
        (Printf.sprintf "p%g is the sample" q)
        42
        (Hist.percentile h q))
    [ 0.; 1.; 50.; 99.; 100. ]

let test_hist_extremes () =
  let h = Hist.create () in
  let huge = 1 lsl 60 in
  Hist.add h 0;
  Hist.add h huge;
  Hist.add h (-17) (* clamped to 0 *);
  Alcotest.(check int) "count" 3 (Hist.count h);
  Alcotest.(check int) "min" 0 (Hist.min h);
  Alcotest.(check int) "max is exact" huge (Hist.max h);
  Alcotest.(check int) "p0 = min" 0 (Hist.percentile h 0.);
  Alcotest.(check int) "p100 = exact max" huge (Hist.percentile h 100.);
  (* Out-of-range quantiles clamp rather than raise. *)
  Alcotest.(check int) "q < 0" 0 (Hist.percentile h (-5.));
  Alcotest.(check int) "q > 100" huge (Hist.percentile h 200.)

let test_hist_quantile_error_bound () =
  (* The log-linear layout promises ~2^-(sub_bits-1) relative error; with
     the default sub_bits = 7 that is under 2%. *)
  let h = Hist.create () in
  for v = 1 to 100_000 do
    Hist.add h v
  done;
  List.iter
    (fun q ->
      let exact = int_of_float (q /. 100. *. 100_000.) in
      let got = Hist.percentile h q in
      let rel =
        abs_float (float_of_int (got - exact)) /. float_of_int exact
      in
      if rel > 0.02 then
        Alcotest.failf "p%g: got %d, exact %d (rel err %.4f)" q got exact rel)
    [ 50.; 90.; 99.; 99.9 ];
  Alcotest.(check int) "p100 exact" 100_000 (Hist.percentile h 100.)

let test_hist_mean_exact () =
  let h = Hist.create ~sub_bits:2 () in
  List.iter (Hist.add h) [ 10; 20; 30; 1000 ];
  (* Mean is tracked outside the coarse buckets, so even sub_bits = 2
     (the floor of the clamp) keeps it exact. *)
  Alcotest.(check (float 1e-9)) "mean" 265. (Hist.mean h);
  Alcotest.(check int) "max" 1000 (Hist.max h)

(* ------------------------------------------------------------------ *)
(* JSON escaping                                                      *)

let test_json_escape () =
  let cases =
    [
      ("plain", "plain");
      ({|say "hi"|}, {|say \"hi\"|});
      ("back\\slash", {|back\\slash|});
      ("line\nbreak", {|line\nbreak|});
      ("tab\there", {|tab\there|});
      ("cr\rlf", {|cr\rlf|});
      ("\b\012", {|\b\f|});
      ("nul\000end", {|nul\u0000end|});
      ("\027[0m", {|\u001b[0m|});
      (* Multi-byte UTF-8 passes through untouched. *)
      ("caf\xc3\xa9", "caf\xc3\xa9");
    ]
  in
  List.iter
    (fun (input, expected) ->
      Alcotest.(check string)
        (Printf.sprintf "escape %S" input)
        expected (Export.json_escape input))
    cases

let test_chrome_escapes_qids () =
  (* A hostile qid must come out escaped in both exporters: no raw quote
     or newline may survive inside the generated JSON strings. *)
  let trace = Trace.create ~capacity:16 () in
  let qid = "q\"1\nend" in
  Trace.emit trace ~time:1.0 ~qid Event.Compile_begin;
  Trace.emit trace ~time:2.0 ~qid (Event.Compile_end { peak = 77 });
  let records = Trace.records trace in
  let chrome = Format.asprintf "%a" Export.chrome records in
  let jsonl = Format.asprintf "%a" Export.jsonl records in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun out ->
      Alcotest.(check bool) "escaped qid present" true
        (contains out {|q\"1\nend|});
      Alcotest.(check bool) "no raw inner quote" false
        (contains out "q\"1"))
    [ chrome; jsonl ];
  (* The chrome document has the expected envelope. *)
  Alcotest.(check bool) "traceEvents envelope" true
    (contains chrome {|{"traceEvents":|});
  (* JSONL: every line is a lone object — hostile qid must not add lines
     beyond one per record (+ trailing newline). *)
  let lines = String.split_on_char '\n' jsonl in
  let nonempty = List.filter (fun l -> l <> "") lines in
  Alcotest.(check int) "one line per record" 2 (List.length nonempty);
  List.iter
    (fun l ->
      Alcotest.(check bool) "line is an object" true
        (String.length l > 1 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    nonempty

(* ------------------------------------------------------------------ *)
(* Ring buffer                                                        *)

let test_trace_null_sink () =
  Alcotest.(check bool) "disabled" false (Trace.enabled Trace.null);
  (* Emission on the null sink is a no-op, not an error. *)
  Trace.emit Trace.null ~time:0. ~qid:"q" Event.Shed;
  Alcotest.(check int) "length" 0 (Trace.length Trace.null);
  Alcotest.(check int) "dropped" 0 (Trace.dropped Trace.null)

let test_trace_ring_overwrites () =
  let t = Trace.create ~capacity:4 () in
  Alcotest.(check bool) "enabled" true (Trace.enabled t);
  for i = 1 to 10 do
    Trace.emit t ~time:(float_of_int i) ~qid:(string_of_int i) Event.Exec_begin
  done;
  Alcotest.(check int) "length capped" 4 (Trace.length t);
  Alcotest.(check int) "dropped counted" 6 (Trace.dropped t);
  let records = Trace.records t in
  Alcotest.(check (list string))
    "most recent survive, oldest first"
    [ "7"; "8"; "9"; "10" ]
    (Array.to_list (Array.map (fun r -> r.Trace.qid) records));
  Trace.clear t;
  Alcotest.(check int) "clear empties" 0 (Trace.length t);
  Alcotest.(check int) "clear resets drops" 0 (Trace.dropped t)

(* ------------------------------------------------------------------ *)
(* Analyzers on synthetic traces                                      *)

let mk time qid event = { Trace.time; qid; event }

let gateway gate phase ?(priority = 0) qid time =
  mk time qid (Event.Gateway { gate; phase; priority })

let test_analyze_gateway_waits () =
  let records =
    [|
      gateway "g" Event.Wait "a" 1.0;
      gateway "g" Event.Acquired "a" 3.0;
      gateway "g" Event.Wait "b" 2.0;
      gateway "g" Event.Timeout "b" 5.0;
      gateway "g" Event.Wait "c" 4.0;
      (* c never admitted: open wait, closed at the last record's time. *)
      mk 9.0 "a" (Event.Gateway { gate = "g"; phase = Event.Release; priority = 0 });
    |]
  in
  let waits = Analyze.gateway_waits records in
  let show (w : Analyze.wait) =
    Printf.sprintf "%s:%s %.1f-%.1f %s" w.qid w.gate w.start w.finish
      (match w.outcome with
      | `Acquired -> "acquired"
      | `Timeout -> "timeout"
      | `Open -> "open")
  in
  Alcotest.(check (list string))
    "waits"
    [ "a:g 1.0-3.0 acquired"; "b:g 2.0-5.0 timeout"; "c:g 4.0-9.0 open" ]
    (List.map show waits)

let test_analyze_holder_violations () =
  let records =
    [|
      (* Unmatched release (its Acquired fell off the ring) must clamp at
         zero, not go to -1 and mask the later overload. *)
      gateway "g" Event.Release "ghost" 0.5;
      gateway "g" Event.Acquired "a" 1.0;
      gateway "g" Event.Acquired "b" 2.0;
      gateway "g" Event.Release "a" 3.0;
      gateway "g" Event.Acquired "c" 4.0;
      gateway "g" Event.Release "c" 5.0;
      gateway "g" Event.Acquired "d" 6.0;
      gateway "g" Event.Acquired "e" 7.0;
    |]
  in
  Alcotest.(check int)
    "peak holders" 3
    (List.assoc "g" (Analyze.max_holders records));
  let violations = Analyze.holder_violations records ~slots:(fun _ -> 2) in
  Alcotest.(check (list (triple string (float 1e-9) int)))
    "slots=2 violated at t=7 only"
    [ ("g", 7.0, 3) ]
    (List.map (fun (g, t, n) -> (g, t, n)) violations);
  Alcotest.(check (list (triple string (float 1e-9) int)))
    "slots=3 clean" []
    (Analyze.holder_violations records ~slots:(fun _ -> 3))

let test_analyze_admission_order () =
  (* b admitted while a — earlier, same priority — still waits: FIFO
     violation. *)
  let bad =
    [|
      gateway "g" Event.Wait ~priority:5 "a" 1.0;
      gateway "g" Event.Wait ~priority:5 "b" 2.0;
      gateway "g" Event.Acquired ~priority:5 "b" 3.0;
    |]
  in
  (match Analyze.admission_violations bad with
  | [ ("g", "b", "a", t) ] -> Alcotest.(check (float 1e-9)) "time" 3.0 t
  | other ->
      Alcotest.failf "expected one violation, got %d" (List.length other));
  (* A later waiter with strictly better (smaller) priority may overtake:
     that is the ladder's progress-priority policy, not a violation. *)
  let priority_ok =
    [|
      gateway "g" Event.Wait ~priority:5 "a" 1.0;
      gateway "g" Event.Wait ~priority:1 "b" 2.0;
      gateway "g" Event.Acquired ~priority:1 "b" 3.0;
      gateway "g" Event.Acquired ~priority:5 "a" 4.0;
    |]
  in
  Alcotest.(check int) "priority overtake allowed" 0
    (List.length (Analyze.admission_violations priority_ok));
  (* A waiter that timed out no longer blocks later admissions. *)
  let timeout_ok =
    [|
      gateway "g" Event.Wait ~priority:5 "a" 1.0;
      gateway "g" Event.Timeout ~priority:5 "a" 2.0;
      gateway "g" Event.Wait ~priority:5 "b" 3.0;
      gateway "g" Event.Acquired ~priority:5 "b" 4.0;
    |]
  in
  Alcotest.(check int) "timeout clears the queue" 0
    (List.length (Analyze.admission_violations timeout_ok))

let test_analyze_usage_points () =
  let records =
    [|
      mk 1.0 "q" Event.Compile_begin;
      mk 2.0 "q" (Event.Compile_alloc { bytes = 10; usage = 10 });
      mk 3.0 "q" (Event.Compile_alloc { bytes = 5; usage = 15 });
      mk 4.0 "q" (Event.Compile_end { peak = 15 });
    |]
  in
  Alcotest.(check (list (pair (float 1e-9) int)))
    "timeline"
    [ (1.0, 0); (2.0, 10); (3.0, 15); (4.0, 0) ]
    (List.assoc "q" (Analyze.usage_points records))

let suite =
  [
    ("hist: empty", `Quick, test_hist_empty);
    ("hist: single sample", `Quick, test_hist_single_sample);
    ("hist: extreme values", `Quick, test_hist_extremes);
    ("hist: quantile error bound", `Quick, test_hist_quantile_error_bound);
    ("hist: mean exact at coarse precision", `Quick, test_hist_mean_exact);
    ("export: json escaping", `Quick, test_json_escape);
    ("export: hostile qids escaped", `Quick, test_chrome_escapes_qids);
    ("trace: null sink", `Quick, test_trace_null_sink);
    ("trace: ring overwrites and counts drops", `Quick, test_trace_ring_overwrites);
    ("analyze: gateway waits", `Quick, test_analyze_gateway_waits);
    ("analyze: holder violations", `Quick, test_analyze_holder_violations);
    ("analyze: admission order", `Quick, test_analyze_admission_order);
    ("analyze: usage points", `Quick, test_analyze_usage_points);
  ]
