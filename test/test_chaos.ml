(* The fault-injection harness and the graceful-degradation ladder.

   The acceptance scenario is the one examples/chaos_pressure.ml ships: a
   memory-ballast spike starting at t=100s against 35 clients, replayed
   from a fixed seed with resilience on and off. The resilient server must
   complete at least 20% more queries and report strictly fewer hard
   errors. *)

let gib = Dbmem.Units.gib

let spike_faults =
  [
    Faultsim.Fault.Memory_ballast
      { at = 100.; bytes = gib 12; hold = 0.; ramp_steps = 240; step_s = 2.5 };
  ]

let run_spike ~resilient =
  let base =
    if resilient then Server.Config.resilient () else Server.Config.default ()
  in
  let config = { base with Server.Config.seed = 42; faults = spike_faults } in
  Server.Experiment.run ~config ~clients:35 ~warmup:60. ~measure:1000.
    ~slice:60. ()

let test_ladder_beats_unprotected () =
  let on = run_spike ~resilient:true in
  let off = run_spike ~resilient:false in
  (* The storm actually happened, identically, in both runs. *)
  Alcotest.(check int) "fault started (on)" 1 on.Server.Experiment.faults_started;
  Alcotest.(check int) "fault finished (on)" 1 on.Server.Experiment.faults_finished;
  (* The exact peak differs between the two runs (the servers release
     memory differently under the squeeze) but both must have been
     starved of most of the machine. *)
  Alcotest.(check bool)
    "ballast squeezed most of the machine" true
    (on.Server.Experiment.ballast_peak > gib 3
    && off.Server.Experiment.ballast_peak > gib 3);
  (* The unprotected server suffered: the errors are there to be saved. *)
  Alcotest.(check bool)
    "unprotected run hits hard errors" true
    (off.Server.Experiment.hard_errors > 50);
  (* Acceptance: >= 20% more completions, strictly fewer hard errors. *)
  Alcotest.(check bool)
    (Printf.sprintf "completions %d >= 1.2 * %d"
       on.Server.Experiment.total_completed
       off.Server.Experiment.total_completed)
    true
    (float_of_int on.Server.Experiment.total_completed
    >= 1.2 *. float_of_int off.Server.Experiment.total_completed);
  Alcotest.(check bool)
    (Printf.sprintf "hard errors %d < %d" on.Server.Experiment.hard_errors
       off.Server.Experiment.hard_errors)
    true
    (on.Server.Experiment.hard_errors < off.Server.Experiment.hard_errors);
  (* The ladder, not luck: degraded rungs actually carried queries. *)
  Alcotest.(check bool)
    "degraded completions used" true
    (on.Server.Experiment.degraded > 0)

(* Same seed + same fault schedule => identical tallies, run to run. The
   whole simulation, chaos included, is a pure function of the seed. *)
let test_deterministic_replay () =
  let a = run_spike ~resilient:true in
  let b = run_spike ~resilient:true in
  Alcotest.(check int)
    "completions" a.Server.Experiment.total_completed
    b.Server.Experiment.total_completed;
  Alcotest.(check int)
    "retries" a.Server.Experiment.retries b.Server.Experiment.retries;
  Alcotest.(check int)
    "sheds" a.Server.Experiment.sheds b.Server.Experiment.sheds;
  Alcotest.(check int)
    "degraded" a.Server.Experiment.degraded b.Server.Experiment.degraded;
  Alcotest.(check int)
    "hard errors" a.Server.Experiment.hard_errors
    b.Server.Experiment.hard_errors;
  Alcotest.(check (list (pair string int)))
    "error tallies" a.Server.Experiment.errors b.Server.Experiment.errors;
  Alcotest.(check int)
    "ballast peak" a.Server.Experiment.ballast_peak
    b.Server.Experiment.ballast_peak;
  Alcotest.(check int)
    "abandoned" a.Server.Experiment.client_stats.Workload.Client.abandoned
    b.Server.Experiment.client_stats.Workload.Client.abandoned

(* A chaos schedule composed of every fault kind runs end to end through
   Experiment (bursts included) without any process dying, and the
   conservation invariants hold. *)
let test_full_schedule_composes () =
  let faults =
    [
      Faultsim.Fault.Memory_ballast
        { at = 40.; bytes = gib 2; hold = 80.; ramp_steps = 8; step_s = 2. };
      Faultsim.Fault.Disk_storm
        { at = 60.; duration = 120.; throughput_factor = 0.4; extra_seek_s = 0.004 };
      Faultsim.Fault.Client_burst
        { at = 80.; duration = 100.; clients = 10; think_mean = 20. };
      Faultsim.Fault.Alloc_glitch
        { at = 100.; duration = 60.; fail_prob = 0.3; clerks = [ "compile" ] };
    ]
  in
  let config =
    { (Server.Config.resilient ()) with Server.Config.seed = 7; faults }
  in
  let r =
    Server.Experiment.run ~config ~clients:12 ~warmup:0. ~measure:400.
      ~slice:100. ()
  in
  Alcotest.(check int) "all faults started" 4 r.Server.Experiment.faults_started;
  Alcotest.(check int) "all faults finished" 4 r.Server.Experiment.faults_finished;
  let c = r.Server.Experiment.client_stats in
  Alcotest.(check bool)
    "attempts >= submitted" true
    (c.Workload.Client.attempts >= c.Workload.Client.submitted);
  Alcotest.(check int)
    "completions = successes" c.Workload.Client.succeeded
    r.Server.Experiment.total_completed

(* With an empty schedule and resilience off, install_faults is a no-op
   and the config is exactly the seed default. *)
let test_no_faults_no_injector () =
  let eng = Sim.Engine.create ~seed:3 () in
  let dbms =
    Server.Dbms.create eng (Server.Config.default ()) (Workload.Sales.catalog ())
  in
  Alcotest.(check bool)
    "no injector" true
    (Server.Dbms.install_faults dbms = None);
  Alcotest.(check bool)
    "no ballast clerk" true
    (Server.Dbms.ballast_clerk dbms = None)

let test_spec_validation () =
  let bad =
    [
      Faultsim.Fault.Memory_ballast
        { at = -1.; bytes = 1; hold = 0.; ramp_steps = 1; step_s = 1. };
      Faultsim.Fault.Memory_ballast
        { at = 0.; bytes = 0; hold = 0.; ramp_steps = 1; step_s = 1. };
      Faultsim.Fault.Disk_storm
        { at = 0.; duration = 1.; throughput_factor = 0.; extra_seek_s = 0. };
      Faultsim.Fault.Disk_storm
        { at = 0.; duration = 1.; throughput_factor = 1.5; extra_seek_s = 0. };
      Faultsim.Fault.Client_burst
        { at = 0.; duration = 1.; clients = 0; think_mean = 1. };
      Faultsim.Fault.Alloc_glitch
        { at = 0.; duration = 1.; fail_prob = 1.5; clerks = [] };
    ]
  in
  List.iter
    (fun spec ->
      Alcotest.(check bool)
        ("rejected: " ^ Faultsim.Fault.label spec)
        true
        (match Faultsim.Fault.validate spec with
        | () -> false
        | exception Invalid_argument _ -> true))
    bad

let suite =
  [
    ("spec validation", `Quick, test_spec_validation);
    ("no faults, no injector", `Quick, test_no_faults_no_injector);
    ("full schedule composes", `Slow, test_full_schedule_composes);
    ("deterministic replay", `Slow, test_deterministic_replay);
    ("ladder beats unprotected", `Slow, test_ladder_beats_unprotected);
  ]
