(* Tests for the CPU pool, execution grants, and the simulated runner. *)

open Execsim

let mib = Dbmem.Units.mib

(* ------------------------------------------------------------------ *)
(* Cpu *)

let test_cpu_single_job_exact_time () =
  let eng = Sim.Engine.create () in
  let cpu = Cpu.create eng ~cores:2 () in
  let finished = ref 0. in
  Sim.Engine.spawn eng (fun () ->
      Cpu.busy cpu 3.0;
      finished := Sim.Engine.now eng);
  Sim.Engine.run_all eng;
  Alcotest.(check (float 1e-6)) "uncontended" 3.0 !finished;
  Alcotest.(check (float 1e-6)) "busy accounted" 3.0 (Cpu.busy_seconds cpu)

let test_cpu_contention_stretches_wallclock () =
  let eng = Sim.Engine.create () in
  let cpu = Cpu.create eng ~cores:1 () in
  let finished = ref [] in
  for _ = 1 to 2 do
    Sim.Engine.spawn eng (fun () ->
        Cpu.busy cpu 2.0;
        finished := Sim.Engine.now eng :: !finished)
  done;
  Sim.Engine.run_all eng;
  (* 4 CPU-seconds on one core: the last job finishes at t=4, and slicing
     means both run "simultaneously", finishing near the end. *)
  (match !finished with
  | [ a; b ] ->
      Alcotest.(check (float 1e-6)) "total work" 4.0 (Float.max a b);
      Alcotest.(check bool) "interleaved (both finish late)" true (Float.min a b > 3.0)
  | _ -> Alcotest.fail "expected two");
  Alcotest.(check (float 1e-6)) "busy total" 4.0 (Cpu.busy_seconds cpu)

let test_cpu_parallel_cores () =
  let eng = Sim.Engine.create () in
  let cpu = Cpu.create eng ~cores:4 () in
  let latest = ref 0. in
  for _ = 1 to 4 do
    Sim.Engine.spawn eng (fun () ->
        Cpu.busy cpu 5.0;
        latest := Float.max !latest (Sim.Engine.now eng))
  done;
  Sim.Engine.run_all eng;
  Alcotest.(check (float 1e-6)) "four jobs on four cores" 5.0 !latest

let test_cpu_utilization () =
  let eng = Sim.Engine.create () in
  let cpu = Cpu.create eng ~cores:2 () in
  Sim.Engine.spawn eng (fun () -> Cpu.busy cpu 4.0);
  ignore (Sim.Engine.schedule eng ~delay:8.0 (fun () -> ()));
  Sim.Engine.run_all eng;
  (* 4 busy core-seconds over an 8-second window. *)
  Alcotest.(check (float 1e-6)) "utilization" 0.5 (Cpu.utilization cpu)

(* ------------------------------------------------------------------ *)
(* Grant *)

let make_grant ?(total = mib 100) ?(max_query_frac = 0.25) ?(min_grant = mib 1)
    ?(timeout = 50.) () =
  let eng = Sim.Engine.create () in
  let manager = Dbmem.Manager.create ~total:(2 * total) () in
  let clerk = Dbmem.Manager.create_clerk manager "execution" in
  let g =
    Grant.create eng manager ~clerk ~total ~max_query_frac ~min_grant ~timeout ()
  in
  (eng, manager, clerk, g)

let test_grant_full_when_it_fits () =
  let eng, _, clerk, g = make_grant () in
  Sim.Engine.spawn eng (fun () ->
      match Grant.acquire g ~ideal:(mib 10) () with
      | Ok n ->
          Alcotest.(check int) "full ideal" (mib 10) n;
          Alcotest.(check int) "clerk charged" (mib 10) (Dbmem.Manager.clerk_used clerk);
          Grant.release g n;
          Alcotest.(check int) "clerk freed" 0 (Dbmem.Manager.clerk_used clerk)
      | Error _ -> Alcotest.fail "unexpected failure");
  Sim.Engine.run_all eng

let test_grant_trims_large_requests () =
  let eng, _, _, g = make_grant ~total:(mib 100) ~max_query_frac:0.25 () in
  Sim.Engine.spawn eng (fun () ->
      match Grant.acquire g ~ideal:(mib 80) () with
      | Ok n ->
          Alcotest.(check int) "trimmed to 25%" (mib 25) n;
          Grant.release g n
      | Error _ -> Alcotest.fail "unexpected failure");
  Sim.Engine.run_all eng

let test_grant_min_grant_floor () =
  let eng, _, _, g = make_grant ~min_grant:(mib 5) ~max_query_frac:0.01 () in
  Sim.Engine.spawn eng (fun () ->
      match Grant.acquire g ~ideal:(mib 50) () with
      | Ok n ->
          (* Cap would be 1 MiB but the floor is 5 MiB. *)
          Alcotest.(check int) "floored" (mib 5) n;
          Grant.release g n
      | Error _ -> Alcotest.fail "unexpected failure");
  Sim.Engine.run_all eng

let test_grant_small_request_untouched () =
  let eng, _, _, g = make_grant ~min_grant:(mib 5) () in
  Sim.Engine.spawn eng (fun () ->
      match Grant.acquire g ~ideal:(mib 2) () with
      | Ok n ->
          Alcotest.(check int) "never more than ideal" (mib 2) n;
          Grant.release g n
      | Error _ -> Alcotest.fail "unexpected failure");
  Sim.Engine.run_all eng

let test_grant_queueing_and_timeout () =
  let eng, _, _, g = make_grant ~total:(mib 100) ~max_query_frac:1.0 ~timeout:10. () in
  let second = ref None in
  Sim.Engine.spawn eng (fun () ->
      match Grant.acquire g ~ideal:(mib 100) () with
      | Ok n ->
          Sim.Engine.sleep 100.;
          Grant.release g n
      | Error _ -> Alcotest.fail "first must succeed");
  Sim.Engine.spawn eng ~delay:1.0 (fun () ->
      second := Some (Grant.acquire g ~ideal:(mib 50) ()));
  Sim.Engine.run_all eng;
  (match !second with
  | Some (Error { Health.Error.code = Health.Error.Memory_wait_timeout; _ }) ->
      ()
  | _ -> Alcotest.fail "expected grant timeout");
  Alcotest.(check int) "timeout counted" 1 (Grant.timeouts g)

let test_grant_fifo () =
  let eng, _, _, g = make_grant ~total:(mib 100) ~max_query_frac:1.0 ~timeout:1000. () in
  let order = ref [] in
  Sim.Engine.spawn eng (fun () ->
      match Grant.acquire g ~ideal:(mib 100) () with
      | Ok n ->
          Sim.Engine.sleep 10.;
          Grant.release g n
      | Error _ -> ());
  List.iter
    (fun (name, delay) ->
      Sim.Engine.spawn eng ~delay (fun () ->
          match Grant.acquire g ~ideal:(mib 40) () with
          | Ok n ->
              order := name :: !order;
              Sim.Engine.sleep 5.;
              Grant.release g n
          | Error _ -> ()))
    [ ("first", 1.0); ("second", 2.0) ];
  Sim.Engine.run_all eng;
  Alcotest.(check (list string)) "fifo service" [ "first"; "second" ] (List.rev !order)

(* ------------------------------------------------------------------ *)
(* Runner *)

let star_plan ~fact_rows =
  let cat = Optimizer.Catalog.create () in
  Optimizer.Catalog.add_table cat
    {
      Optimizer.Catalog.tbl_name = "dim";
      rows = 1000.;
      columns =
        [ Optimizer.Catalog.int_column "dim_key" ~distinct:1000.;
          Optimizer.Catalog.int_column "attr" ~distinct:100. ];
      indexes = [];
    };
  Optimizer.Catalog.add_table cat
    {
      Optimizer.Catalog.tbl_name = "fact";
      rows = fact_rows;
      columns =
        [ Optimizer.Catalog.int_column "fact_key" ~distinct:fact_rows;
          Optimizer.Catalog.int_column "dim_key" ~distinct:1000.;
          Optimizer.Catalog.int_column "m" ~distinct:1000. ];
      indexes = [];
    };
  let q =
    Optimizer.Query.make ~id:"rq" ~rels:[ ("fact", "f"); ("dim", "d") ]
      ~preds:
        [ { Optimizer.Query.jleft = 0; jlcol = "dim_key"; jright = 1;
            jrcol = "dim_key"; jsel = 0.001 } ]
      ~filters:[] ~agg:None
  in
  let card = Optimizer.Card.create cat q in
  Optimizer.Greedy.plan Optimizer.Cost.default card

let make_resources ?(memory = Dbmem.Units.gib 1) ?(workspace = mib 256) () =
  let eng = Sim.Engine.create () in
  let manager = Dbmem.Manager.create ~total:memory () in
  let pool_clerk = Dbmem.Manager.create_clerk manager "bufpool" in
  let exec_clerk = Dbmem.Manager.create_clerk manager "execution" in
  let disk =
    Bufpool.Disk.create eng ~spindles:4 ~seek_s:0.005
      ~throughput_bytes_per_s:(float_of_int (mib 40))
  in
  let pool =
    Bufpool.Pool.create eng manager ~clerk:pool_clerk ~disk ~page_bytes:(mib 1)
      ~policy:Bufpool.Policy.Lru2
  in
  let grants =
    Grant.create eng manager ~clerk:exec_clerk ~total:workspace ~timeout:500. ()
  in
  let cpu = Cpu.create eng ~cores:4 () in
  let resources =
    { Runner.eng; cpu; pool; disk; grants; rng = Sim.Rng.create 5 }
  in
  (eng, manager, resources)

let run_plan eng resources plan =
  let result = ref None in
  Sim.Engine.spawn eng (fun () ->
      result := Some (Runner.run resources Runner.default_config plan));
  Sim.Engine.run_all eng;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "runner did not finish"

let test_runner_completes_and_accounts () =
  let eng, manager, resources = make_resources () in
  let plan = star_plan ~fact_rows:2_000_000. in
  match run_plan eng resources plan with
  | Ok o ->
      Alcotest.(check bool) "positive duration" true (o.Runner.duration > 0.);
      Alcotest.(check bool) "read pages" true (o.Runner.pages_read > 0);
      Alcotest.(check bool) "granted within ideal" true (o.Runner.granted <= o.Runner.ideal);
      (* The grant was released: only pool memory remains. *)
      Alcotest.(check int) "grant released"
        (Bufpool.Pool.resident_bytes resources.Runner.pool)
        (Dbmem.Manager.used manager)
  | Error _ -> Alcotest.fail "runner failed"

let test_runner_warm_pool_is_faster () =
  let eng, _, resources = make_resources ~memory:(Dbmem.Units.gib 2) () in
  let plan = star_plan ~fact_rows:500_000. in
  let cold =
    match run_plan eng resources plan with
    | Ok o -> o.Runner.duration
    | Error _ -> Alcotest.fail "cold run failed"
  in
  (* Second run: everything the first run touched is still cached (note:
     the random scan start means only partial overlap, so just require
     strictly faster). *)
  let result = ref None in
  Sim.Engine.spawn eng (fun () ->
      result := Some (Runner.run resources Runner.default_config plan));
  Sim.Engine.run_all eng;
  match !result with
  | Some (Ok o) ->
      Alcotest.(check bool)
        (Printf.sprintf "warm (%.2fs) <= cold (%.2fs)" o.Runner.duration cold)
        true
        (o.Runner.duration < cold)
  | _ -> Alcotest.fail "warm run failed"

(* A plan that deliberately builds its hash table on the fact side, so the
   ideal grant is large (the optimizer would avoid this; the runner must
   still execute it, spilling). *)
let fact_build_plan ~fact_rows =
  let cat = Optimizer.Catalog.create () in
  Optimizer.Catalog.add_table cat
    {
      Optimizer.Catalog.tbl_name = "dim";
      rows = 1000.;
      columns = [ Optimizer.Catalog.int_column "dim_key" ~distinct:1000. ];
      indexes = [];
    };
  Optimizer.Catalog.add_table cat
    {
      Optimizer.Catalog.tbl_name = "fact";
      rows = fact_rows;
      columns =
        [ Optimizer.Catalog.int_column "fact_key" ~distinct:fact_rows;
          Optimizer.Catalog.int_column "dim_key" ~distinct:1000. ];
      indexes = [];
    };
  let q =
    Optimizer.Query.make ~id:"fb" ~rels:[ ("fact", "f"); ("dim", "d") ]
      ~preds:
        [ { Optimizer.Query.jleft = 0; jlcol = "dim_key"; jright = 1;
            jrcol = "dim_key"; jsel = 0.001 } ]
      ~filters:[] ~agg:None
  in
  let card = Optimizer.Card.create cat q in
  let fact = Optimizer.Plan.seq_scan Optimizer.Cost.default card 0 in
  let dim = Optimizer.Plan.seq_scan Optimizer.Cost.default card 1 in
  Optimizer.Plan.hash_join Optimizer.Cost.default
    ~rows:(Optimizer.Card.card card (Optimizer.Relset.full 2))
    ~build:fact ~probe:dim

let test_runner_spills_when_grant_short () =
  let eng, _, resources = make_resources ~workspace:(mib 8) () in
  (* Building on a 20M-row fact needs ~1.6 GB: far over the workspace. *)
  let plan = fact_build_plan ~fact_rows:20_000_000. in
  match run_plan eng resources plan with
  | Ok o ->
      Alcotest.(check bool) "grant was short" true (o.Runner.granted < o.Runner.ideal);
      Alcotest.(check bool) "spilled" true o.Runner.spilled;
      Alcotest.(check bool) "spill wrote to disk" true
        (Bufpool.Disk.bytes_written resources.Runner.disk > 0)
  | Error _ -> Alcotest.fail "runner failed"

let test_runner_grant_timeout_surfaces () =
  let eng, _, resources = make_resources ~workspace:(mib 64) () in
  (* Occupy the whole workspace forever (requests are trimmed to 25%, so
     four of them saturate the semaphore). *)
  for _ = 1 to 4 do
    Sim.Engine.spawn eng (fun () ->
        match Grant.acquire resources.Runner.grants ~ideal:(mib 64) () with
        | Ok _ -> Sim.Engine.sleep 1e9
        | Error _ -> ())
  done;
  let plan = fact_build_plan ~fact_rows:20_000_000. in
  let result = ref None in
  Sim.Engine.spawn eng ~delay:1.0 (fun () ->
      result := Some (Runner.run resources Runner.default_config plan));
  Sim.Engine.run eng ~until:2_000.;
  match !result with
  | Some (Error { Health.Error.code = Health.Error.Memory_wait_timeout; _ }) ->
      ()
  | _ -> Alcotest.fail "expected grant timeout"

let suite =
  [
    ("cpu single job", `Quick, test_cpu_single_job_exact_time);
    ("cpu contention", `Quick, test_cpu_contention_stretches_wallclock);
    ("cpu parallel cores", `Quick, test_cpu_parallel_cores);
    ("cpu utilization", `Quick, test_cpu_utilization);
    ("grant full when fits", `Quick, test_grant_full_when_it_fits);
    ("grant trims large", `Quick, test_grant_trims_large_requests);
    ("grant min floor", `Quick, test_grant_min_grant_floor);
    ("grant small untouched", `Quick, test_grant_small_request_untouched);
    ("grant queue and timeout", `Quick, test_grant_queueing_and_timeout);
    ("grant fifo", `Quick, test_grant_fifo);
    ("runner completes", `Quick, test_runner_completes_and_accounts);
    ("runner warm pool faster", `Quick, test_runner_warm_pool_is_faster);
    ("runner spills on short grant", `Quick, test_runner_spills_when_grant_short);
    ("runner grant timeout", `Quick, test_runner_grant_timeout_surfaces);
  ]
