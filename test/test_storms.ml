(* Metastable-failure defense tests: retry-budget conservation, compile
   singleflight (unit and fuzzed), the storm detector's episode state
   machine, LIFO queue flips, hedge-loser accounting, and a compact
   A/B of the storm experiment itself. *)

let mib = Dbmem.Units.mib

(* ------------------------------------------------------------------ *)
(* Retry budgets *)

(* Conservation: whatever the op sequence, tokens are neither created
   nor destroyed — [min initial max_tokens + earned - capped - spent]
   is the balance, the balance never goes negative, and every refused
   spend is counted as a denial. *)
let prop_budget_conservation =
  QCheck.Test.make ~name:"retry budget conserves tokens" ~count:300
    QCheck.(
      quad (float_bound_inclusive 20.) (float_bound_inclusive 3.)
        (float_bound_inclusive 20.)
        (list bool))
    (fun (initial, earn, max_tokens, ops) ->
      QCheck.assume (max_tokens >= 0.);
      let cfg =
        {
          Server.Resilience.Budget.initial;
          earn_per_success = earn;
          max_tokens;
          spend_per_retry = 1.;
        }
      in
      let b = Server.Resilience.Budget.create cfg in
      let denials = ref 0 in
      List.iter
        (fun spend ->
          if spend then begin
            if not (Server.Resilience.Budget.try_spend b) then incr denials
          end
          else Server.Resilience.Budget.earn b)
        ops;
      let open Server.Resilience.Budget in
      let lhs = Float.min initial max_tokens +. earned b -. capped b -. spent b in
      abs_float (lhs -. balance b) < 1e-9
      && balance b >= -1e-9
      && denied b = !denials)

let test_budget_denies_when_empty () =
  let b =
    Server.Resilience.Budget.create
      {
        Server.Resilience.Budget.initial = 2.;
        earn_per_success = 0.5;
        max_tokens = 2.;
        spend_per_retry = 1.;
      }
  in
  Alcotest.(check bool) "spend 1" true (Server.Resilience.Budget.try_spend b);
  Alcotest.(check bool) "spend 2" true (Server.Resilience.Budget.try_spend b);
  Alcotest.(check bool) "spend 3 denied" false
    (Server.Resilience.Budget.try_spend b);
  Alcotest.(check int) "denial counted" 1 (Server.Resilience.Budget.denied b);
  (* Two successes earn one token back; the next retry is affordable. *)
  Server.Resilience.Budget.earn b;
  Server.Resilience.Budget.earn b;
  Alcotest.(check bool) "earned spend" true
    (Server.Resilience.Budget.try_spend b)

let test_budget_caps_earnings () =
  let b =
    Server.Resilience.Budget.create
      {
        Server.Resilience.Budget.initial = 5.;
        earn_per_success = 10.;
        max_tokens = 5.;
        spend_per_retry = 1.;
      }
  in
  Server.Resilience.Budget.earn b;
  Alcotest.(check (float 1e-9)) "balance capped" 5.
    (Server.Resilience.Budget.balance b);
  Alcotest.(check (float 1e-9)) "overflow counted as capped" 10.
    (Server.Resilience.Budget.capped b)

let test_budget_validation () =
  List.iter
    (fun (name, cfg) ->
      match Server.Resilience.Budget.create cfg with
      | _ -> Alcotest.failf "%s accepted" name
      | exception Invalid_argument _ -> ())
    [
      ( "negative initial",
        {
          Server.Resilience.Budget.initial = -1.;
          earn_per_success = 0.1;
          max_tokens = 10.;
          spend_per_retry = 1.;
        } );
      ( "zero spend",
        {
          Server.Resilience.Budget.initial = 1.;
          earn_per_success = 0.1;
          max_tokens = 10.;
          spend_per_retry = 0.;
        } );
    ]

(* ------------------------------------------------------------------ *)
(* Singleflight *)

(* Fuzzed arrival schedules: fibers arrive at arbitrary times, enter the
   flight for an arbitrary key and "compile" for an arbitrary duration.
   At no instant may two compiles of the same key overlap, and the
   ledger must balance: duplicates = coalesced + timeouts, no timeouts
   with an unbounded wait. *)
let prop_singleflight_no_overlapping_compiles =
  QCheck.Test.make ~name:"singleflight: one compile per key at a time"
    ~count:100
    QCheck.(
      list_of_size (Gen.int_range 1 25)
        (triple (int_range 0 3) (float_bound_inclusive 50.)
           (float_bound_inclusive 20.)))
    (fun arrivals ->
      let eng = Sim.Engine.create ~seed:1 () in
      let sf = Plancache.Singleflight.create eng in
      let compiling = Array.make 4 false in
      let overlap = ref false in
      let compiles = Array.make 4 0 in
      List.iteri
        (fun i (k, at, dur) ->
          Sim.Engine.spawn eng
            ~name:(Printf.sprintf "c%d" i)
            (fun () ->
              Sim.Engine.sleep at;
              let key = Printf.sprintf "k%d" k in
              match
                Plancache.Singleflight.enter sf ~key ~max_wait:1e9 ()
              with
              | `Leader tok ->
                  if compiling.(k) then overlap := true;
                  compiling.(k) <- true;
                  compiles.(k) <- compiles.(k) + 1;
                  Sim.Engine.sleep dur;
                  compiling.(k) <- false;
                  Plancache.Singleflight.exit sf tok
              | `Coalesced -> ()
              | `Duplicate | `Timed_out ->
                  (* Coalesce mode with unbounded wait: impossible. *)
                  overlap := true))
        arrivals;
      Sim.Engine.run eng ~until:1e6;
      (not !overlap)
      && Plancache.Singleflight.timeouts sf = 0
      && Plancache.Singleflight.duplicates sf
         = Plancache.Singleflight.coalesced sf
      && Plancache.Singleflight.led sf
         = Array.fold_left ( + ) 0 compiles
      && Plancache.Singleflight.in_flight sf = 0)

let test_singleflight_observe_counts_without_blocking () =
  let eng = Sim.Engine.create ~seed:2 () in
  let sf = Plancache.Singleflight.create ~mode:Plancache.Singleflight.Observe eng in
  let compiled = ref 0 in
  for i = 0 to 3 do
    Sim.Engine.spawn eng
      ~name:(Printf.sprintf "c%d" i)
      (fun () ->
        match Plancache.Singleflight.enter sf ~key:"stmt" () with
        | `Leader tok ->
            incr compiled;
            Sim.Engine.sleep 10.;
            Plancache.Singleflight.exit sf tok
        | `Duplicate ->
            (* Observe mode: counted, never blocked — compile anyway. *)
            incr compiled;
            Sim.Engine.sleep 10.
        | `Coalesced | `Timed_out -> Alcotest.fail "observe mode blocked")
  done;
  Sim.Engine.run eng ~until:100.;
  Alcotest.(check int) "everyone compiled" 4 !compiled;
  Alcotest.(check int) "one led" 1 (Plancache.Singleflight.led sf);
  Alcotest.(check int) "three duplicates" 3
    (Plancache.Singleflight.duplicates sf);
  Alcotest.(check int) "nobody coalesced" 0
    (Plancache.Singleflight.coalesced sf)

let test_singleflight_timeout_compiles_solo () =
  let eng = Sim.Engine.create ~seed:3 () in
  let sf = Plancache.Singleflight.create eng in
  let events = ref [] in
  Sim.Engine.spawn eng ~name:"leader" (fun () ->
      match Plancache.Singleflight.enter sf ~key:"stmt" () with
      | `Leader tok ->
          Sim.Engine.sleep 100.;
          Plancache.Singleflight.exit sf tok;
          events := `Leader_done :: !events
      | _ -> Alcotest.fail "first arrival must lead");
  Sim.Engine.spawn eng ~name:"follower" (fun () ->
      Sim.Engine.sleep 1.;
      match Plancache.Singleflight.enter sf ~key:"stmt" ~max_wait:10. () with
      | `Timed_out -> events := `Timed_out :: !events
      | _ -> Alcotest.fail "short-wait follower must time out");
  Sim.Engine.run eng ~until:200.;
  Alcotest.(check bool) "follower timed out before leader finished" true
    (!events = [ `Leader_done; `Timed_out ]);
  Alcotest.(check int) "timeout counted" 1 (Plancache.Singleflight.timeouts sf);
  Alcotest.(check int) "duplicate = coalesced + timeouts" 1
    (Plancache.Singleflight.duplicates sf)

(* The acceptance headline: N concurrent cold misses of one canonical
   statement cost exactly one optimization. *)
let test_cold_stampede_compiles_once () =
  let eng = Sim.Engine.create ~seed:5 () in
  let config =
    {
      (Server.Config.default ()) with
      Server.Config.defense = Server.Config.defended;
    }
  in
  let dbms = Server.Dbms.create eng config (Workload.Sales.catalog ()) in
  Server.Dbms.start dbms;
  let template =
    List.hd (Workload.Sales.parameterized_templates ~variants:1 ())
  in
  let rng = Sim.Rng.create 7 in
  let n = 8 in
  let oks = ref 0 in
  for i = 1 to n do
    let q = Workload.Template.instance rng template ~id:i in
    Sim.Engine.spawn eng
      ~name:(Printf.sprintf "client-%d" i)
      (fun () ->
        match Server.Dbms.submit dbms q with
        | Ok () -> incr oks
        | Error e ->
            Alcotest.failf "stampede submit failed: %s"
              (Health.Error.to_string e))
  done;
  Sim.Engine.run eng ~until:10_000.;
  let sf = Server.Dbms.singleflight dbms in
  Alcotest.(check int) "all queries completed" n !oks;
  Alcotest.(check int) "exactly one optimization led" 1
    (Plancache.Singleflight.led sf);
  Alcotest.(check int) "the rest coalesced" (n - 1)
    (Plancache.Singleflight.coalesced sf);
  (* One compile's memory peak was recorded — the optimizer really ran
     once, not once per client. *)
  Alcotest.(check int) "one compile peak recorded" 1
    (Sim.Stats.Online.count
       (Server.Metrics.compile_peak (Server.Dbms.metrics dbms)))

(* ------------------------------------------------------------------ *)
(* Storm detector *)

let storm_cfg =
  {
    Health.Storm.enabled = true;
    window_s = 10.;
    surge_factor = 2.;
    min_misses = 3;
    calm_windows = 2;
  }

let test_detector_flags_surge_and_calms () =
  let eng = Sim.Engine.create ~seed:1 () in
  let d = Health.Storm.create eng storm_cfg in
  let flips = ref [] in
  Health.Storm.set_on_change d (fun on -> flips := on :: !flips);
  Sim.Engine.spawn eng (fun () ->
      (* A burst over the floor flags a storm eagerly, mid-window. *)
      for i = 1 to 4 do
        Health.Storm.note_compile d ~template:(Printf.sprintf "p%03d" i)
      done;
      Alcotest.(check bool) "storm active after surge" true
        (Health.Storm.active d);
      (* Two quiet windows end the episode. *)
      Sim.Engine.sleep (3. *. storm_cfg.Health.Storm.window_s);
      Health.Storm.note_compile d ~template:"p001";
      Alcotest.(check bool) "calm after quiet windows" false
        (Health.Storm.active d));
  Sim.Engine.run eng ~until:1_000.;
  Alcotest.(check int) "one episode" 1 (Health.Storm.storms_total d);
  Alcotest.(check (list bool)) "begin then end" [ true; false ]
    (List.rev !flips)

let test_detector_disabled_never_flags () =
  let eng = Sim.Engine.create ~seed:1 () in
  let d = Health.Storm.create eng Health.Storm.disabled in
  Sim.Engine.spawn eng (fun () ->
      for i = 1 to 100 do
        Health.Storm.note_compile d ~template:(Printf.sprintf "p%03d" i)
      done);
  Sim.Engine.run eng ~until:100.;
  Alcotest.(check bool) "never active" false (Health.Storm.active d);
  Alcotest.(check int) "no episodes" 0 (Health.Storm.storms_total d)

let test_detector_hottest_deterministic () =
  let eng = Sim.Engine.create ~seed:1 () in
  let d = Health.Storm.create eng storm_cfg in
  Sim.Engine.spawn eng (fun () ->
      List.iter
        (fun t -> Health.Storm.note_compile d ~template:t)
        [ "b"; "a"; "c"; "a"; "b"; "a" ]);
  Sim.Engine.run eng ~until:10.;
  Alcotest.(check (list (pair string int)))
    "ordered by count, ties by name"
    [ ("a", 3); ("b", 2); ("c", 1) ]
    (Health.Storm.hottest d ~k:3)

(* ------------------------------------------------------------------ *)
(* Adaptive queue discipline *)

let test_sem_lifo_serves_newest_first () =
  let eng = Sim.Engine.create ~seed:1 () in
  let sem = Sim.Resource.Sem.create eng ~capacity:1 () in
  let order = ref [] in
  let waiter name at =
    Sim.Engine.spawn eng ~name (fun () ->
        Sim.Engine.sleep at;
        ignore (Sim.Resource.Sem.acquire sem ~n:1 ());
        order := name :: !order;
        Sim.Engine.sleep 100.;
        Sim.Resource.Sem.release sem ~n:1)
  in
  waiter "holder" 0.;
  (* Queue three while the holder occupies the only slot, then flip to
     LIFO: the flip applies to waiters enqueued from now on, so the
     pre-flip backlog keeps FIFO order and post-flip arrivals overtake
     it. *)
  waiter "old1" 1.;
  waiter "old2" 2.;
  ignore
    (Sim.Engine.schedule eng ~delay:3. (fun () ->
         Sim.Resource.Sem.set_discipline sem Sim.Resource.Lifo));
  waiter "new1" 4.;
  waiter "new2" 5.;
  Sim.Engine.run eng ~until:1_000.;
  Alcotest.(check (list string))
    "newest post-flip waiter first"
    [ "holder"; "new2"; "new1"; "old1"; "old2" ]
    (List.rev !order)

(* ------------------------------------------------------------------ *)
(* Hedge-loser accounting *)

let test_uncount_scrubs_booking () =
  let eng = Sim.Engine.create ~seed:9 () in
  let sh =
    Server.Shard.create eng ~index:0 ~name:"shard0"
      (Server.Config.default ())
      (Workload.Sales.catalog ())
  in
  let rng = Sim.Rng.create 1 in
  let template = List.hd (Workload.Sales.templates ()) in
  Sim.Engine.spawn eng (fun () ->
      let q = Workload.Template.instance rng template ~id:1 in
      let r, booking = Server.Shard.submit_tracked sh q in
      (match r with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "submit failed: %s" (Health.Error.to_string e));
      Alcotest.(check int) "finished booked" 1 (Server.Shard.finished sh);
      (* The hedge lost: scrub it. accepted = finished + lost still
         holds, and the scrub shows up in discarded. *)
      Server.Shard.uncount sh booking;
      Alcotest.(check int) "finished scrubbed" 0 (Server.Shard.finished sh);
      Alcotest.(check int) "accepted scrubbed too" 0
        (Server.Shard.accepted sh);
      Alcotest.(check int) "discard counted" 1 (Server.Shard.discarded sh));
  Sim.Engine.run eng ~until:5_000.

(* ------------------------------------------------------------------ *)
(* The storm experiment *)

let small_storm ?(defenses = true) ?(seed = 11)
    ?(schedule = Server.Storms.Mass_invalidation) () =
  {
    Server.Storms.default_config with
    Server.Storms.s_shards = 2;
    s_clients = 24;
    s_variants = 16;
    s_think = 5.;
    s_warmup = 120.;
    s_measure = 360.;
    s_slice = 30.;
    s_total = mib 512 * 2;
    s_defenses = defenses;
    s_seed = seed;
    s_schedule = schedule;
  }

let check_storm_accounting name (o : Server.Storms.outcome) =
  Alcotest.(check bool)
    (name ^ ": ok + failed + rejected = submitted + in flight slack")
    true
    (o.Server.Storms.ok + o.Server.Storms.failed <= o.Server.Storms.submitted);
  Alcotest.(check bool)
    (name ^ ": client successes = router oks")
    true
    (o.Server.Storms.cl_succeeded <= o.Server.Storms.ok);
  Alcotest.(check bool)
    (name ^ ": rates non-negative")
    true
    (o.Server.Storms.pre_rate >= 0. && o.Server.Storms.post_rate >= 0.)

let test_storm_ab_contrast () =
  let on = Server.Storms.run (small_storm ~defenses:true ()) in
  let off = Server.Storms.run (small_storm ~defenses:false ()) in
  check_storm_accounting "defended" on;
  check_storm_accounting "undefended" off;
  (* The robust A/B signals: coalescing happens only with defenses on,
     duplicate compiles only with defenses off. *)
  Alcotest.(check int) "defended arm never duplicates a compile" 0
    on.Server.Storms.dup_compiles;
  Alcotest.(check bool) "defended arm coalesced misses" true
    (on.Server.Storms.coalesced > 0);
  Alcotest.(check bool) "undefended arm wasted duplicate compiles" true
    (off.Server.Storms.dup_compiles > 0);
  Alcotest.(check int) "undefended arm cannot coalesce" 0
    off.Server.Storms.coalesced;
  Alcotest.(check bool) "defended arm recovered in the window" true
    on.Server.Storms.recovered;
  (* Defenses consume no randomness the baseline doesn't: both arms see
     the identical workload, so client submission counts are close (the
     arms diverge only through server-side scheduling). *)
  Alcotest.(check bool) "both arms ran the same workload shape" true
    (abs
       (on.Server.Storms.cl_submitted - off.Server.Storms.cl_submitted)
    * 10
    < on.Server.Storms.cl_submitted)

let test_storm_determinism () =
  let cfg = small_storm ~seed:3 () in
  let a = Server.Storms.run cfg in
  let b = Server.Storms.run cfg in
  Alcotest.(check (array (pair (float 0.) (float 0.))))
    "slices bit-identical" a.Server.Storms.slices b.Server.Storms.slices;
  Alcotest.(check int) "submitted identical" a.Server.Storms.submitted
    b.Server.Storms.submitted;
  Alcotest.(check int) "dup compiles identical" a.Server.Storms.dup_compiles
    b.Server.Storms.dup_compiles;
  Alcotest.(check (float 0.)) "recovery identical" a.Server.Storms.recovery_s
    b.Server.Storms.recovery_s

let test_storm_crash_schedule_runs () =
  let o =
    Server.Storms.run (small_storm ~schedule:Server.Storms.Cold_crash ())
  in
  check_storm_accounting "crash" o;
  let crashed =
    List.exists
      (fun r -> r.Server.Storms.sr_crashes > 0)
      o.Server.Storms.shard_reports
  in
  Alcotest.(check bool) "a shard crashed and rejoined" true crashed

let test_storm_validate_rejects () =
  let bad f = f Server.Storms.default_config in
  List.iter
    (fun (name, cfg) ->
      match Server.Storms.validate cfg with
      | () -> Alcotest.failf "%s accepted" name
      | exception Invalid_argument _ -> ())
    [
      ("one shard", bad (fun c -> { c with Server.Storms.s_shards = 1 }));
      ("no memory", bad (fun c -> { c with Server.Storms.s_total = mib 64 }));
      ("no clients", bad (fun c -> { c with Server.Storms.s_clients = 0 }));
      ("bad slice", bad (fun c -> { c with Server.Storms.s_slice = 0. }));
      ( "negative sf wait",
        bad (fun c -> { c with Server.Storms.s_sf_wait = Some (-1.) }) );
      ( "negative warm prime",
        bad (fun c -> { c with Server.Storms.s_warm_prime = Some (-1) }) );
    ]

let test_defense_overrides_apply () =
  let cfg =
    {
      Server.Storms.default_config with
      Server.Storms.s_sf_wait = Some 7.;
      s_budget_tokens = Some 3.;
      s_lifo_after = Some 42.;
      s_warm_prime = Some 9;
    }
  in
  let d = Server.Storms.defense_of cfg in
  Alcotest.(check (float 0.)) "sf wait" 7. d.Server.Config.d_sf_wait_s;
  Alcotest.(check (float 0.)) "lifo after" 42. d.Server.Config.d_lifo_after_s;
  Alcotest.(check int) "warm prime" 9 d.Server.Config.d_warm_prime;
  (match d.Server.Config.d_budget with
  | Some b -> Alcotest.(check (float 0.)) "budget tokens" 3. b.Server.Resilience.Budget.initial
  | None -> Alcotest.fail "budget expected");
  (* The off arm ignores every override: it runs no defenses at all. *)
  let off =
    Server.Storms.defense_of
      { cfg with Server.Storms.s_defenses = false }
  in
  Alcotest.(check bool) "off arm is no_defense" true
    (off = Server.Config.no_defense)

let suite =
  [
    Alcotest.test_case "budget denies when empty" `Quick
      test_budget_denies_when_empty;
    Alcotest.test_case "budget caps earnings" `Quick test_budget_caps_earnings;
    Alcotest.test_case "budget validation" `Quick test_budget_validation;
    QCheck_alcotest.to_alcotest prop_budget_conservation;
    QCheck_alcotest.to_alcotest prop_singleflight_no_overlapping_compiles;
    Alcotest.test_case "singleflight observe mode" `Quick
      test_singleflight_observe_counts_without_blocking;
    Alcotest.test_case "singleflight timeout compiles solo" `Quick
      test_singleflight_timeout_compiles_solo;
    Alcotest.test_case "cold stampede compiles once" `Quick
      test_cold_stampede_compiles_once;
    Alcotest.test_case "detector flags surge and calms" `Quick
      test_detector_flags_surge_and_calms;
    Alcotest.test_case "detector disabled never flags" `Quick
      test_detector_disabled_never_flags;
    Alcotest.test_case "detector hottest deterministic" `Quick
      test_detector_hottest_deterministic;
    Alcotest.test_case "sem lifo serves newest first" `Quick
      test_sem_lifo_serves_newest_first;
    Alcotest.test_case "uncount scrubs booking" `Quick
      test_uncount_scrubs_booking;
    Alcotest.test_case "storm A/B contrast" `Slow test_storm_ab_contrast;
    Alcotest.test_case "storm determinism" `Slow test_storm_determinism;
    Alcotest.test_case "storm crash schedule" `Slow
      test_storm_crash_schedule_runs;
    Alcotest.test_case "storm validate rejects" `Quick
      test_storm_validate_rejects;
    Alcotest.test_case "defense overrides apply" `Quick
      test_defense_overrides_apply;
  ]
