(* Mid-tier statement/result cache: staleness semantics (TTL boundary,
   write-driven invalidation), LRU eviction under a byte budget, broker
   shrink monotonicity, QCheck properties over fuzzed op interleavings
   against a shadow model, and the end-to-end acceptance dynamics of the
   Cached experiment (brokered beats cache-off at a parameterized-heavy
   mix; ballast makes the cache shrink, not the run collapse; the
   parallel fan-out is bit-identical to the sequential one). *)

let mk ?charge ?release ?(budget = 1000) ?(ttl = 10.) ?(max_entry = 500) () =
  Midcache.Cache.create ?charge ?release ~budget
    { Midcache.Cache.ttl; max_entry_bytes = max_entry }

(* ------------------------------------------------------------------ *)
(* Staleness: TTL boundary and write-driven invalidation *)

let test_ttl_boundary () =
  let c = mk ~ttl:10. () in
  assert (Midcache.Cache.put c ~now:0. ~key:"k" ~bytes:10 ~rels:[ "r" ]);
  Alcotest.(check (option int))
    "strictly before expiry is a hit" (Some 10)
    (Midcache.Cache.get c ~now:9.999 "k");
  Alcotest.(check (option int))
    "exactly at expiry is a miss" None
    (Midcache.Cache.get c ~now:10. "k");
  Alcotest.(check int) "expiry counted" 1 (Midcache.Cache.expired c);
  Alcotest.(check int) "miss counted" 1 (Midcache.Cache.misses c);
  Alcotest.(check int) "entry dropped" 0 (Midcache.Cache.entries c);
  (* The expired entry is gone for good, not resurrectable. *)
  Alcotest.(check (option int))
    "still a miss later" None
    (Midcache.Cache.get c ~now:10.5 "k")

let test_ttl_disabled () =
  let c = mk ~ttl:0. () in
  assert (Midcache.Cache.put c ~now:0. ~key:"k" ~bytes:10 ~rels:[ "r" ]);
  Alcotest.(check (option int))
    "ttl <= 0 never expires" (Some 10)
    (Midcache.Cache.get c ~now:1e12 "k")

let test_invalidate_by_relation () =
  let c = mk () in
  assert (Midcache.Cache.put c ~now:0. ~key:"a" ~bytes:10 ~rels:[ "r1"; "r2" ]);
  assert (Midcache.Cache.put c ~now:0. ~key:"b" ~bytes:20 ~rels:[ "r2" ]);
  assert (Midcache.Cache.put c ~now:0. ~key:"c" ~bytes:30 ~rels:[ "r3" ]);
  let entries, bytes = Midcache.Cache.invalidate c "r2" in
  Alcotest.(check int) "two entries joined r2" 2 entries;
  Alcotest.(check int) "their bytes" 30 bytes;
  Alcotest.(check bool) "a gone" false (Midcache.Cache.mem c "a");
  Alcotest.(check bool) "b gone" false (Midcache.Cache.mem c "b");
  Alcotest.(check bool) "c untouched" true (Midcache.Cache.mem c "c");
  Alcotest.(check int) "resident" 30 (Midcache.Cache.resident c);
  let entries, bytes = Midcache.Cache.invalidate c "r2" in
  Alcotest.(check (pair int int)) "idempotent" (0, 0) (entries, bytes)

(* ------------------------------------------------------------------ *)
(* LRU under mixed-size entries *)

let test_lru_mixed_sizes () =
  let c = mk ~budget:100 ~max_entry:100 () in
  assert (Midcache.Cache.put c ~now:0. ~key:"a" ~bytes:40 ~rels:[ "r" ]);
  assert (Midcache.Cache.put c ~now:1. ~key:"b" ~bytes:30 ~rels:[ "r" ]);
  assert (Midcache.Cache.put c ~now:2. ~key:"c" ~bytes:20 ~rels:[ "r" ]);
  (* Touch [a]: recency order is now c, b from the LRU end. *)
  Alcotest.(check (option int)) "touch a" (Some 40) (Midcache.Cache.get c ~now:3. "a");
  (* 50 bytes need 40 freed: strict LRU must evict b (30) then c (20),
     never the freshly-touched a. *)
  assert (Midcache.Cache.put c ~now:4. ~key:"d" ~bytes:50 ~rels:[ "r" ]);
  Alcotest.(check bool) "a survives (MRU)" true (Midcache.Cache.mem c "a");
  Alcotest.(check bool) "b evicted first (LRU)" false (Midcache.Cache.mem c "b");
  Alcotest.(check bool) "c evicted second" false (Midcache.Cache.mem c "c");
  Alcotest.(check bool) "d resident" true (Midcache.Cache.mem c "d");
  Alcotest.(check int) "two space evictions" 2 (Midcache.Cache.evictions c);
  Alcotest.(check int) "resident = a + d" 90 (Midcache.Cache.resident c)

let test_oversized_refused () =
  let c = mk ~budget:100 ~max_entry:60 () in
  assert (Midcache.Cache.put c ~now:0. ~key:"a" ~bytes:40 ~rels:[ "r" ]);
  Alcotest.(check bool)
    "over max_entry_bytes refused" false
    (Midcache.Cache.put c ~now:0. ~key:"big" ~bytes:61 ~rels:[ "r" ]);
  Alcotest.(check bool)
    "non-positive refused" false
    (Midcache.Cache.put c ~now:0. ~key:"zero" ~bytes:0 ~rels:[ "r" ]);
  Alcotest.(check int) "refusals counted" 2 (Midcache.Cache.refused c);
  Alcotest.(check bool)
    "a undisturbed by refusals" true (Midcache.Cache.mem c "a")

let test_set_budget_evicts () =
  let c = mk ~budget:100 ~max_entry:100 () in
  assert (Midcache.Cache.put c ~now:0. ~key:"a" ~bytes:40 ~rels:[ "r" ]);
  assert (Midcache.Cache.put c ~now:1. ~key:"b" ~bytes:40 ~rels:[ "r" ]);
  Midcache.Cache.set_budget c 50;
  Alcotest.(check int) "budget re-targeted" 50 (Midcache.Cache.budget c);
  Alcotest.(check bool) "LRU a evicted" false (Midcache.Cache.mem c "a");
  Alcotest.(check bool) "MRU b kept" true (Midcache.Cache.mem c "b");
  Alcotest.(check bool)
    "resident under new budget" true
    (Midcache.Cache.resident c <= 50)

(* ------------------------------------------------------------------ *)
(* Broker-driven shrink: monotone release, no re-grow within a reclaim *)

let test_shrink_monotonic () =
  (* The release hook observes every byte leaving the cache; during one
     shrink call the resident size must be strictly decreasing — a
     reclaim that re-grows the cache would be lying to the broker. *)
  let residents = ref [] in
  let cache = ref None in
  let release _n =
    match !cache with
    | None -> ()
    | Some c -> residents := Midcache.Cache.resident c :: !residents
  in
  let c = mk ~release ~budget:1000 ~max_entry:1000 () in
  cache := Some c;
  for i = 1 to 10 do
    assert (
      Midcache.Cache.put c ~now:0.
        ~key:(Printf.sprintf "k%d" i)
        ~bytes:(10 * i) ~rels:[ "r" ])
  done;
  let before = Midcache.Cache.resident c in
  residents := [];
  let freed = Midcache.Cache.shrink c 200 in
  Alcotest.(check bool) "freed at least the ask" true (freed >= 200);
  Alcotest.(check int)
    "resident dropped by exactly freed" (before - freed)
    (Midcache.Cache.resident c);
  let seq = List.rev !residents in
  let rec strictly_decreasing = function
    | a :: (b :: _ as rest) -> a > b && strictly_decreasing rest
    | _ -> true
  in
  (* [release] fires after each eviction's decrement, so the observed
     resident sizes within the call must strictly decrease. *)
  Alcotest.(check bool)
    "no re-grow within one reclaim" true
    (strictly_decreasing (before :: seq));
  Alcotest.(check int) "one effective shrink" 1 (Midcache.Cache.shrinks c);
  Alcotest.(check int) "shrunk bytes tallied" freed
    (Midcache.Cache.shrunk_bytes c);
  (* A shrink that frees nothing is not an effective shrink. *)
  let c2 = mk () in
  Alcotest.(check int) "empty cache frees 0" 0 (Midcache.Cache.shrink c2 100);
  Alcotest.(check int) "and counts no shrink" 0 (Midcache.Cache.shrinks c2)

let test_charge_hook_refusal () =
  (* External accounting (a memory clerk) vetoes: the cache evicts and
     retries, and when the hook never relents the insert is refused with
     nothing resident and the books balanced. *)
  let allow = ref true in
  let charged = ref 0 in
  let charge n =
    if !allow then begin
      charged := !charged + n;
      true
    end
    else false
  in
  let release n = charged := !charged - n in
  let c = mk ~charge ~release ~budget:100 ~max_entry:100 () in
  assert (Midcache.Cache.put c ~now:0. ~key:"a" ~bytes:40 ~rels:[ "r" ]);
  allow := false;
  Alcotest.(check bool)
    "vetoed insert refused" false
    (Midcache.Cache.put c ~now:0. ~key:"b" ~bytes:40 ~rels:[ "r" ]);
  Alcotest.(check int)
    "books balance resident" (Midcache.Cache.resident c) !charged;
  allow := true;
  assert (Midcache.Cache.put c ~now:0. ~key:"c" ~bytes:40 ~rels:[ "r" ]);
  Alcotest.(check int)
    "books still balance" (Midcache.Cache.resident c) !charged

let test_demand_hint_window () =
  let c = mk ~budget:100 ~max_entry:100 () in
  assert (Midcache.Cache.put c ~now:0. ~key:"a" ~bytes:60 ~rels:[ "r" ]);
  assert (Midcache.Cache.put c ~now:1. ~key:"b" ~bytes:60 ~rels:[ "r" ]);
  (* b displaced a: unmet demand is the 60 evicted bytes on top of the
     60 resident. *)
  Alcotest.(check int) "hint = resident + evicted" 120
    (Midcache.Cache.demand_hint c);
  Alcotest.(check int)
    "window resets once reported" 60
    (Midcache.Cache.demand_hint c);
  (* Staleness drops (invalidation) are not unmet demand. *)
  ignore (Midcache.Cache.invalidate c "r");
  Alcotest.(check int) "invalidation not in hint" 0
    (Midcache.Cache.demand_hint c)

(* ------------------------------------------------------------------ *)
(* QCheck: fuzzed interleavings against a shadow model *)

type op =
  | Get of int
  | Put of int * int * int list  (* key, bytes, rels *)
  | Invalidate of int
  | Shrink of int
  | Set_budget of int
  | Bypass
  | Advance of int  (* tenths of a second *)

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun k -> Get k) (int_range 0 7));
        ( 4,
          map3
            (fun k b rels -> Put (k, b, rels))
            (int_range 0 7) (int_range 1 80)
            (list_size (int_range 1 2) (int_range 0 3)) );
        (1, map (fun r -> Invalidate r) (int_range 0 3));
        (1, map (fun n -> Shrink n) (int_range 1 150));
        (1, map (fun n -> Set_budget n) (int_range 20 150));
        (1, return Bypass);
        (2, map (fun dt -> Advance dt) (int_range 1 40));
      ])

let pp_op = function
  | Get k -> Printf.sprintf "Get k%d" k
  | Put (k, b, rels) ->
      Printf.sprintf "Put k%d %db [%s]" k b
        (String.concat ";" (List.map (Printf.sprintf "r%d") rels))
  | Invalidate r -> Printf.sprintf "Invalidate r%d" r
  | Shrink n -> Printf.sprintf "Shrink %d" n
  | Set_budget n -> Printf.sprintf "Set_budget %d" n
  | Bypass -> "Bypass"
  | Advance dt -> Printf.sprintf "Advance %d" dt

let ops_arbitrary =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    QCheck.Gen.(list_size (int_range 1 200) op_gen)

(* The shadow model is an association list key -> (bytes, rels, expiry).
   It never evicts for space, so the real cache's live set is a subset of
   the model's: a real hit outside the model is a staleness violation —
   the entry was invalidated (or expired, or replaced with different
   bytes) after insertion and served anyway. *)
let prop_fuzzed_interleavings =
  QCheck.Test.make ~name:"fuzzed op interleavings respect the shadow model"
    ~count:300 ops_arbitrary (fun ops ->
      let ttl = 10. in
      let charged = ref 0 in
      let charge n =
        charged := !charged + n;
        true
      and release n = charged := !charged - n in
      let c =
        Midcache.Cache.create ~charge ~release ~budget:100
          { Midcache.Cache.ttl; max_entry_bytes = 90 }
      in
      let model = Hashtbl.create 16 in
      let now = ref 0. in
      let key k = Printf.sprintf "k%d" k in
      let rel r = Printf.sprintf "r%d" r in
      let fail fmt = QCheck.Test.fail_reportf fmt in
      List.iter
        (fun op ->
          (match op with
          | Advance dt -> now := !now +. (0.1 *. float_of_int dt)
          | Get k -> (
              match Midcache.Cache.get c ~now:!now (key k) with
              | None -> ()
              | Some got -> (
                  (* Invariant (a): a hit must match a live, unexpired,
                     never-invalidated-since-insert model entry. *)
                  match Hashtbl.find_opt model (key k) with
                  | None ->
                      fail "hit on %s which the model invalidated" (key k)
                  | Some (bytes, _, expiry) ->
                      if got <> bytes then
                        fail "hit on %s returned %d bytes, model has %d"
                          (key k) got bytes;
                      if !now >= expiry then
                        fail "hit on %s at %.1f past expiry %.1f" (key k)
                          !now expiry))
          | Put (k, b, rels) ->
              let rels = List.map rel rels in
              if Midcache.Cache.put c ~now:!now ~key:(key k) ~bytes:b ~rels
              then
                Hashtbl.replace model (key k)
                  (b, rels, !now +. ttl)
              else
                (* Refused or evicted-on-arrival: either way the cache
                   must not serve this key with these bytes later unless
                   re-inserted; dropping it from the model keeps the
                   subset relation. *)
                Hashtbl.remove model (key k)
          | Invalidate r ->
              ignore (Midcache.Cache.invalidate c (rel r));
              Hashtbl.iter
                (fun k (_, rels, _) ->
                  if List.mem (rel r) rels then Hashtbl.remove model k)
                (Hashtbl.copy model)
          | Shrink n -> ignore (Midcache.Cache.shrink c n)
          | Set_budget n -> Midcache.Cache.set_budget c n
          | Bypass -> Midcache.Cache.note_bypass c);
          (* Invariant (b): resident never exceeds the granted budget,
             and the external accounting agrees byte-for-byte. *)
          if Midcache.Cache.resident c > Midcache.Cache.budget c then
            fail "resident %d over budget %d after %s"
              (Midcache.Cache.resident c) (Midcache.Cache.budget c) (pp_op op);
          if Midcache.Cache.resident c <> !charged then
            fail "resident %d but %d charged after %s"
              (Midcache.Cache.resident c) !charged (pp_op op))
        ops;
      (* Invariant (c): every request is classified exactly once. *)
      if
        Midcache.Cache.requests c
        <> Midcache.Cache.hits c + Midcache.Cache.misses c
           + Midcache.Cache.bypasses c
      then
        fail "conservation: %d requests <> %d hits + %d misses + %d bypasses"
          (Midcache.Cache.requests c) (Midcache.Cache.hits c)
          (Midcache.Cache.misses c)
          (Midcache.Cache.bypasses c);
      true)

(* ------------------------------------------------------------------ *)
(* End-to-end acceptance: the Cached experiment's dynamics *)

let quick_cfg mode =
  {
    Server.Cached.default_config with
    Server.Cached.k_mode = mode;
    k_clients = 16;
    k_variants = 32;
    k_warmup = 120.;
    k_measure = 400.;
    k_seed = 42;
  }

(* Computed once, shared by the acceptance tests below (each outcome is a
   pure function of its config, so sharing is safe). *)
let acceptance = lazy (
  let off = Server.Cached.run (quick_cfg Server.Cached.Cache_off) in
  let brokered = Server.Cached.run (quick_cfg Server.Cached.Cache_brokered) in
  let squeezed =
    Server.Cached.run
      { (quick_cfg Server.Cached.Cache_brokered) with
        Server.Cached.k_ballast_gib = 3. }
  in
  (off, brokered, squeezed))

let test_brokered_beats_off () =
  let off, brokered, _ = Lazy.force acceptance in
  let open Server.Cached in
  Alcotest.(check bool)
    "hits happened at a 60% parameterized mix" true (brokered.hits > 0);
  (* Seed audit (test/seed_audit.exe): across seeds 1..20 the uplift
     spans [1.000, 1.365] — brokered never loses to cache-off at this
     config at any audited seed. *)
  Alcotest.(check bool)
    (Printf.sprintf "throughput uplift %.2fx >= 1.0"
       (uplift brokered ~over:off))
    true
    (uplift brokered ~over:off >= 1.0);
  (* The admission drop is a property of this pinned seed (audited
     spread is [-19, +9]: a faster brokered run can submit *more*
     queries and re-gain admissions); the seed-robust displacement claim
     is the compile count below. *)
  Alcotest.(check bool)
    (Printf.sprintf "gateway admissions drop (%d -> %d)" off.gw_acquires
       brokered.gw_acquires)
    true
    (brokered.gw_acquires < off.gw_acquires);
  Alcotest.(check bool)
    "cache hits displace engine compiles" true
    (brokered.compiles < off.compiles + off.bypasses);
  Alcotest.(check int)
    "conservation at the experiment layer" brokered.requests
    (brokered.hits + brokered.misses + brokered.bypasses);
  Alcotest.(check int)
    "cache-off is all bypasses" off.requests off.bypasses

let test_ballast_shrinks_gracefully () =
  let _, brokered, squeezed = Lazy.force acceptance in
  let open Server.Cached in
  (* Both shrink-count assertions are properties of this pinned seed:
     the audit's calm-shrink spread is [0, 5] (ambient pressure can
     squeeze a few times at other seeds) and the ballast spread [0, 5].
     Seed 42 pins the designed contrast — calm baseline untouched,
     ballast forcing the broker's hand. *)
  Alcotest.(check int)
    "no broker squeeze without ballast" 0 brokered.shrink_events;
  Alcotest.(check bool)
    (Printf.sprintf "ballast forces shrinks (%d)" squeezed.shrink_events)
    true (squeezed.shrink_events > 0);
  Alcotest.(check bool)
    "shrinks release bytes" true (squeezed.shrink_freed > 0);
  (* Graceful degradation: pressure costs throughput but the run keeps
     completing work. Seed audit: retention spans [0.750, 0.948] across
     seeds 1..20, so (0.5, 1.2) bounds every audited seed with margin. *)
  let retention = uplift squeezed ~over:brokered in
  Alcotest.(check bool)
    (Printf.sprintf "throughput retention %.2f in (0.5, 1.2)" retention)
    true
    (retention > 0.5 && retention < 1.2)

let test_jobs_identity () =
  (* The acceptance criterion verbatim: the same cells through the domain
     pool and inline must be byte-identical, Marshal-compared. *)
  let cells =
    List.map
      (fun mode ->
        {
          (quick_cfg mode) with
          Server.Cached.k_seed = 11;
          k_clients = 8;
          k_variants = 12;
          k_warmup = 60.;
          k_measure = 180.;
        })
      [
        Server.Cached.Cache_off;
        Server.Cached.Cache_fixed;
        Server.Cached.Cache_brokered;
      ]
  in
  let seq = Parallel.Pool.run ~jobs:1 Server.Cached.run cells in
  let par = Parallel.Pool.run ~jobs:4 Server.Cached.run cells in
  Alcotest.(check bool)
    "jobs 1 and jobs 4 bit-identical" true
    (String.equal
       (Marshal.to_string seq [ Marshal.No_sharing ])
       (Marshal.to_string par [ Marshal.No_sharing ]))

(* ------------------------------------------------------------------ *)
(* Traffic mix plumbing *)

let test_mixed_templates_ratio_bounds () =
  (* Both pure regimes must produce non-empty, weight-positive pools —
     weighted_choice rejects zero-weight groups. *)
  let all_param = Workload.Mix.mixed_templates ~ratio:1.0 ~variants:8 () in
  let all_adhoc = Workload.Mix.mixed_templates ~ratio:0.0 ~variants:8 () in
  Alcotest.(check bool) "ratio 1.0 non-empty" true (all_param <> []);
  Alcotest.(check bool) "ratio 0.0 non-empty" true (all_adhoc <> []);
  List.iter
    (fun (t : Workload.Template.t) ->
      Alcotest.(check bool) "positive weight" true (t.Workload.Template.weight > 0.))
    (all_param @ all_adhoc);
  Alcotest.check_raises "ratio out of range"
    (Invalid_argument "Mix.mixed_templates: ratio outside [0, 1]") (fun () ->
      ignore (Workload.Mix.mixed_templates ~ratio:1.5 ~variants:8 ()))

let test_diurnal_curve () =
  let think =
    Workload.Mix.think_of
      ~diurnal:{ Workload.Mix.period = 100.; peak_load = 4. }
      ~base:60. ()
  in
  Alcotest.(check (float 1e-6)) "trough at t=0 is the base" 60. (think 0.);
  Alcotest.(check (float 1e-6))
    "peak at half period divides think by peak_load" 15. (think 50.);
  Alcotest.(check (float 1e-6)) "periodic" 60. (think 100.);
  let flat = Workload.Mix.think_of ~base:60. () in
  Alcotest.(check (float 1e-6)) "no curve is constant" 60. (flat 123.)

let suite =
  [
    ("ttl boundary is a miss", `Quick, test_ttl_boundary);
    ("ttl <= 0 disables expiry", `Quick, test_ttl_disabled);
    ("invalidate by relation", `Quick, test_invalidate_by_relation);
    ("lru order under mixed sizes", `Quick, test_lru_mixed_sizes);
    ("oversized and empty payloads refused", `Quick, test_oversized_refused);
    ("set_budget evicts to fit", `Quick, test_set_budget_evicts);
    ("shrink is monotone, no re-grow", `Quick, test_shrink_monotonic);
    ("charge-hook veto refuses cleanly", `Quick, test_charge_hook_refusal);
    ("demand hint windows evictions", `Quick, test_demand_hint_window);
    QCheck_alcotest.to_alcotest prop_fuzzed_interleavings;
    ("mixed templates at ratio bounds", `Quick, test_mixed_templates_ratio_bounds);
    ("diurnal think curve", `Quick, test_diurnal_curve);
    ("brokered beats cache-off", `Slow, test_brokered_beats_off);
    ("ballast shrinks the cache gracefully", `Slow, test_ballast_shrinks_gracefully);
    ("parallel fan-out bit-identical", `Slow, test_jobs_identity);
  ]
