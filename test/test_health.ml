(* Supervision-layer tests: unit tests for the error taxonomy, circuit
   breakers, watchdog, starvation auditor and backoff edges; integration
   tests on the canonical chaos scenario (breakers trip and recover,
   supervised throughput, golden health report); and a QCheck property
   over fuzzed fault schedules (no query is ever permanently stuck, the
   breaker books balance, and every tripped breaker closes once calm
   traffic probes it). *)

(* Advance the engine's virtual clock by [dt] even when no model events
   are pending: park a no-op at the target time so [run] reaches it. *)
let advance eng dt =
  let target = Sim.Engine.now eng +. dt in
  ignore (Sim.Engine.schedule eng ~delay:dt (fun () -> ()));
  Sim.Engine.run eng ~until:target

(* ------------------------------------------------------------------ *)
(* Error taxonomy *)

let test_error_taxonomy () =
  let open Health.Error in
  Alcotest.(check (option int)) "701" (Some 701) (sql_code Insufficient_memory);
  Alcotest.(check (option int)) "8645" (Some 8645) (sql_code Memory_wait_timeout);
  Alcotest.(check (option int)) "8651" (Some 8651) (sql_code Low_memory_condition);
  Alcotest.(check (option int)) "sheds have no SQL code" None (sql_code Admission_shed);
  (* Severity drives hard-error accounting: back-pressure refusals are
     informational and must never trip a breaker. *)
  List.iter
    (fun c -> Alcotest.(check bool) (code_name c) true (severity c = Severe))
    [ Insufficient_memory; Memory_wait_timeout; Low_memory_condition ];
  List.iter
    (fun c ->
      Alcotest.(check bool) (code_name c) true (severity c = Informational);
      Alcotest.(check bool) (code_name c) false (Server.Metrics.is_hard_error c))
    [ Admission_shed; Breaker_open; Shard_unavailable ];
  List.iter
    (fun c -> Alcotest.(check bool) (code_name c) true (severity c = Warning))
    [ Watchdog_cancelled; Deadline_exceeded ];
  (* Cancellations are final; resource waits are worth a resubmit. *)
  Alcotest.(check bool) "8645 retryable" true (retryable Memory_wait_timeout);
  Alcotest.(check bool) "cancel not retryable" false (retryable Watchdog_cancelled);
  Alcotest.(check bool) "deadline not retryable" false (retryable Deadline_exceeded);
  Alcotest.(check string) "rendering with detail" "8645 memory-wait-timeout (big)"
    (to_string (make ~detail:"big" Memory_wait_timeout));
  Alcotest.(check string) "rendering without detail" "701 insufficient-memory"
    (to_string (make Insufficient_memory));
  Alcotest.(check string) "rendering without SQL code" "admission-shed (admission)"
    (to_string (make ~detail:"admission" Admission_shed));
  (* A shard-down refusal is routing back-pressure: retryable against a
     surviving shard, never a breaker-tripping failure. *)
  Alcotest.(check bool) "shard-unavailable retryable" true
    (retryable Shard_unavailable);
  (* An exhausted retry budget is back-pressure (info, not an engine
     failure) but deliberately NOT retryable: the whole point is that the
     client fails fast instead of feeding the storm. *)
  Alcotest.(check bool) "budget-exhausted is info" true
    (severity Retry_budget_exhausted = Informational);
  Alcotest.(check bool) "budget-exhausted not retryable" false
    (retryable Retry_budget_exhausted);
  Alcotest.(check int) "taxonomy is complete" (List.length all_codes) 9

(* ------------------------------------------------------------------ *)
(* Circuit breaker state machine *)

let breaker_state = Alcotest.testable
    (Fmt.of_to_string Health.Breaker.state_name)
    (fun a b -> a = b)

let test_breaker_lifecycle () =
  let eng = Sim.Engine.create ~seed:1 () in
  let b =
    Health.Breaker.create eng
      { Health.Breaker.failure_threshold = 3; cooldown_s = 60. }
  in
  let state tpl = Health.Breaker.state b ~template:tpl in
  (* Fresh template: closed, admits. *)
  Alcotest.check breaker_state "unknown template closed" Health.Breaker.Closed (state "T1");
  Alcotest.(check bool) "closed admits" true
    (Result.is_ok (Health.Breaker.admit b ~template:"T1"));
  (* Two failures: still below the threshold. *)
  Health.Breaker.record_failure b ~template:"T1";
  Health.Breaker.record_failure b ~template:"T1";
  Alcotest.check breaker_state "below threshold" Health.Breaker.Closed (state "T1");
  (* A success resets the streak: two more failures still do not trip. *)
  Health.Breaker.record_success b ~template:"T2";
  Health.Breaker.record_failure b ~template:"T2";
  Health.Breaker.record_failure b ~template:"T2";
  Health.Breaker.record_success b ~template:"T2";
  Health.Breaker.record_failure b ~template:"T2";
  Health.Breaker.record_failure b ~template:"T2";
  Alcotest.check breaker_state "success resets the streak" Health.Breaker.Closed (state "T2");
  (* Third consecutive failure trips T1 open; arrivals are refused with a
     structured error naming the template. *)
  Health.Breaker.record_failure b ~template:"T1";
  Alcotest.check breaker_state "tripped" Health.Breaker.Open (state "T1");
  Alcotest.(check int) "one open" 1 (Health.Breaker.opened_total b);
  (match Health.Breaker.admit b ~template:"T1" with
  | Error { Health.Error.code = Health.Error.Breaker_open; detail } ->
      Alcotest.(check string) "refusal names the template" "T1" detail
  | _ -> Alcotest.fail "open breaker admitted a query");
  (* Cooldown expiry is lazy: after 60 s the breaker reports half-open and
     admits exactly one probe. *)
  advance eng 60.;
  Alcotest.check breaker_state "half-open after cooldown" Health.Breaker.Half_open (state "T1");
  Alcotest.(check bool) "probe admitted" true
    (Result.is_ok (Health.Breaker.admit b ~template:"T1"));
  Alcotest.(check bool) "second concurrent probe refused" true
    (Result.is_error (Health.Breaker.admit b ~template:"T1"));
  (* Probe success closes. *)
  Health.Breaker.record_success b ~template:"T1";
  Alcotest.check breaker_state "closed after probe success" Health.Breaker.Closed (state "T1");
  Alcotest.(check int) "one close" 1 (Health.Breaker.closed_total b);
  Alcotest.(check (list (pair string breaker_state))) "no breaker left non-closed" []
    (Health.Breaker.states b);
  (* Probe failure re-trips for another full cooldown. *)
  Health.Breaker.record_failure b ~template:"T1";
  Health.Breaker.record_failure b ~template:"T1";
  Health.Breaker.record_failure b ~template:"T1";
  advance eng 60.;
  Alcotest.(check bool) "second probe admitted" true
    (Result.is_ok (Health.Breaker.admit b ~template:"T1"));
  Health.Breaker.record_failure b ~template:"T1";
  Alcotest.check breaker_state "probe failure re-trips" Health.Breaker.Open (state "T1");
  Alcotest.(check int) "three opens total" 3 (Health.Breaker.opened_total b);
  Alcotest.(check (list (pair string breaker_state))) "states lists the open breaker"
    [ ("T1", Health.Breaker.Open) ]
    (Health.Breaker.states b);
  (* Late success from a query admitted before the trip is ignored. *)
  Health.Breaker.record_success b ~template:"T1";
  Alcotest.check breaker_state "late success ignored while open" Health.Breaker.Open (state "T1")

(* A half-open probe that gets shed by downstream admission control never
   ran — releasing it must return the probe slot without re-tripping, and
   the next arrival becomes the new probe. *)
let test_breaker_probe_shed () =
  let eng = Sim.Engine.create ~seed:1 () in
  let b =
    Health.Breaker.create eng
      { Health.Breaker.failure_threshold = 3; cooldown_s = 60. }
  in
  let state tpl = Health.Breaker.state b ~template:tpl in
  for _ = 1 to 3 do
    Health.Breaker.record_failure b ~template:"T"
  done;
  Alcotest.check breaker_state "tripped" Health.Breaker.Open (state "T");
  advance eng 60.;
  Alcotest.(check bool) "probe admitted" true
    (Result.is_ok (Health.Breaker.admit b ~template:"T"));
  Health.Breaker.release_probe b ~template:"T";
  Alcotest.check breaker_state "shed probe leaves half-open" Health.Breaker.Half_open
    (state "T");
  Alcotest.(check int) "shed is not a failure: no re-trip" 1
    (Health.Breaker.opened_total b);
  Alcotest.(check bool) "next arrival becomes the probe" true
    (Result.is_ok (Health.Breaker.admit b ~template:"T"));
  Health.Breaker.record_success b ~template:"T";
  Alcotest.check breaker_state "recovers through the replacement probe"
    Health.Breaker.Closed (state "T");
  (* Releasing with no probe out, or for an unseen template, is a no-op. *)
  Health.Breaker.release_probe b ~template:"T";
  Health.Breaker.release_probe b ~template:"never-seen";
  Alcotest.check breaker_state "release is a no-op when closed" Health.Breaker.Closed
    (state "T")

(* ------------------------------------------------------------------ *)
(* Watchdog escalation ladder *)

let test_watchdog_escalation () =
  let eng = Sim.Engine.create ~seed:1 () in
  let w =
    Health.Watchdog.create eng
      { Health.Watchdog.poll_s = 10.; stale_after_s = 30.; cancel_after_s = 90. }
  in
  Health.Watchdog.start w;
  let s = Health.Watchdog.watch w ~qid:"q#000001" in
  Alcotest.(check int) "one session watched" 1 (Health.Watchdog.watched w);
  (* Silent for 25 s: below the stale threshold. *)
  advance eng 25.;
  Alcotest.(check bool) "not yet stale" false (Health.Watchdog.softened s);
  (* Silent for 35 s: softened, not cancelled. *)
  advance eng 10.;
  Alcotest.(check bool) "softened at 30s silent" true (Health.Watchdog.softened s);
  Alcotest.(check bool) "not cancelled yet" false (Health.Watchdog.cancel_requested s);
  (* A beat un-softens: the query showed progress. *)
  Health.Watchdog.beat s;
  Alcotest.(check bool) "beat clears the soften" false (Health.Watchdog.softened s);
  (* Silence again: softened a second time, then cancelled at 90 s. *)
  advance eng 40.;
  Alcotest.(check bool) "softened again" true (Health.Watchdog.softened s);
  Alcotest.(check bool) "still not cancelled" false (Health.Watchdog.cancel_requested s);
  advance eng 60.;
  Alcotest.(check bool) "cancelled at 90s silent" true (Health.Watchdog.cancel_requested s);
  (* Cancellation is sticky: a late beat cannot resurrect the query. *)
  Health.Watchdog.beat s;
  Alcotest.(check bool) "cancel is sticky" true (Health.Watchdog.cancel_requested s);
  Alcotest.(check int) "two stale episodes" 2 (Health.Watchdog.stale_total w);
  Alcotest.(check int) "one cancel" 1 (Health.Watchdog.cancel_total w);
  Health.Watchdog.unwatch w s;
  Health.Watchdog.unwatch w s;
  Alcotest.(check int) "unwatch drains (idempotent)" 0 (Health.Watchdog.watched w)

(* ------------------------------------------------------------------ *)
(* Starvation auditor *)

let test_starvation_widens_and_restores () =
  let eng = Sim.Engine.create ~seed:1 () in
  let sv =
    Health.Starvation.create eng
      { Health.Starvation.audit_s = 10.; stall_audits = 3; widen_by = 1; max_widen = 2 }
  in
  let queued = ref 5 and admitted = ref 0 and slots = ref 4 in
  Health.Starvation.add_gate sv ~name:"small"
    ~queued:(fun () -> !queued)
    ~admitted:(fun () -> !admitted)
    ~slots:(fun () -> !slots)
    ~set_slots:(fun n -> slots := n);
  Health.Starvation.start sv;
  (* Two stalled audits: below the threshold, no intervention. *)
  advance eng 25.;
  Alcotest.(check int) "no widening below threshold" 4 !slots;
  (* Third stalled audit: widen by one. *)
  advance eng 10.;
  Alcotest.(check int) "widened to 5" 5 !slots;
  Alcotest.(check int) "one intervention" 1 (Health.Starvation.widen_total sv);
  Alcotest.(check (list (pair string int))) "reported above base"
    [ ("small", 1) ]
    (Health.Starvation.widened_now sv);
  (* Three more stalled audits: widen again, to the base+2 cap. *)
  advance eng 30.;
  Alcotest.(check int) "widened to the cap" 6 !slots;
  Alcotest.(check int) "two interventions" 2 (Health.Starvation.widen_total sv);
  (* Still starved, but capped: no further widening, no phantom counts. *)
  advance eng 30.;
  Alcotest.(check int) "capped at base+2" 6 !slots;
  Alcotest.(check int) "capped interventions not counted" 2
    (Health.Starvation.widen_total sv);
  (* Queue drains: the emergency slots are given back. *)
  queued := 0;
  advance eng 10.;
  Alcotest.(check int) "base restored on drain" 4 !slots;
  Alcotest.(check (list (pair string int))) "nothing above base" []
    (Health.Starvation.widened_now sv);
  (* Progress resets the stall count: 2 stalls, a grant, 2 stalls = no
     intervention; a third consecutive stall then triggers one. *)
  queued := 5;
  advance eng 20.;
  admitted := 1;
  advance eng 10.;
  advance eng 20.;
  Alcotest.(check int) "progress reset the stall count" 4 !slots;
  advance eng 10.;
  Alcotest.(check int) "third consecutive stall widens" 5 !slots;
  Alcotest.(check int) "three interventions" 3 (Health.Starvation.widen_total sv)

(* ------------------------------------------------------------------ *)
(* Broker insistence: a component that ignores consecutive shrink
   verdicts without its usage falling gets its reclaim hook called; a
   complying (shrinking) component and a hookless one never do. *)

let test_broker_insists_on_deaf_components () =
  let mib = Dbmem.Units.mib in
  let eng = Sim.Engine.create () in
  let m = Dbmem.Manager.create ~total:(mib 100) () in
  let cfg = { Qcore.Broker.default_config with Qcore.Broker.insist_after = 3 } in
  let broker = Qcore.Broker.create eng m cfg in
  let deaf = Dbmem.Manager.create_clerk m "deaf" in
  let nice = Dbmem.Manager.create_clerk m "nice" in
  let reclaims = ref [] in
  let _ =
    Qcore.Broker.register broker ~name:"deaf" ~clerk:deaf
      ~reclaim:(fun wanted ->
        reclaims := wanted :: !reclaims;
        let give = min wanted (Dbmem.Manager.clerk_used deaf) in
        Dbmem.Manager.free deaf give;
        give)
      ()
  in
  (* [nice] has no hook: it is outside the broker's writ, like the
     ballast, and must never be forced however far over target it sits. *)
  let _ = Qcore.Broker.register broker ~name:"nice" ~clerk:nice () in
  Dbmem.Manager.alloc_exn deaf (mib 70);
  Dbmem.Manager.alloc_exn nice (mib 30);
  (* Two over-target ticks: the broker is still only asking. *)
  Qcore.Broker.tick broker;
  Qcore.Broker.tick broker;
  Alcotest.(check bool) "pressure seen" true (Qcore.Broker.under_pressure broker);
  Alcotest.(check int) "still advisory below insist_after" 0
    (Qcore.Broker.forced_reclaims broker);
  (* Third consecutive deaf tick: the broker insists through the hook. *)
  Qcore.Broker.tick broker;
  Alcotest.(check int) "forced reclaim fired" 1
    (Qcore.Broker.forced_reclaims broker);
  (match !reclaims with
  | [ wanted ] ->
      Alcotest.(check bool) "hook asked for the overage" true (wanted > 0)
  | l -> Alcotest.failf "expected 1 hook call, saw %d" (List.length l));
  Alcotest.(check bool) "the reclaim actually freed memory" true
    (Dbmem.Manager.clerk_used deaf < mib 70);
  (* A complying component — usage falling, however slowly — is left
     alone: free a sliver before each tick and the streak keeps
     resetting. *)
  let before = Qcore.Broker.forced_reclaims broker in
  Dbmem.Manager.alloc_exn deaf (mib 70 - Dbmem.Manager.clerk_used deaf);
  Qcore.Broker.tick broker;
  for _ = 1 to 6 do
    Dbmem.Manager.free deaf (mib 1);
    Qcore.Broker.tick broker
  done;
  Alcotest.(check int) "complying component never forced" before
    (Qcore.Broker.forced_reclaims broker)

(* ------------------------------------------------------------------ *)
(* Backoff edge cases (satellite fix) *)

let test_backoff_edges () =
  let pol =
    {
      Server.Resilience.disabled with
      Server.Resilience.backoff_base_s = 10.;
      backoff_max_s = 100.;
      jitter_frac = 0.;
    }
  in
  let rng = Sim.Rng.create 3 in
  let b p attempt = Server.Resilience.backoff p ~attempt ~rng in
  Alcotest.(check (float 1e-9)) "attempt 1 = base" 10. (b pol 1);
  Alcotest.(check (float 1e-9)) "attempt 0 clamps to base" 10. (b pol 0);
  Alcotest.(check (float 1e-9)) "negative attempt clamps to base" 10. (b pol (-7));
  Alcotest.(check (float 1e-9)) "doubles per attempt" 80. (b pol 4);
  Alcotest.(check (float 1e-9)) "capped at backoff_max" 100. (b pol 20);
  (* A hand-built policy with negative jitter must never sleep backwards. *)
  let neg = { pol with Server.Resilience.jitter_frac = -1.0 } in
  Alcotest.(check (float 1e-9)) "negative jitter ignored" 10. (b neg 1);
  (* Nor can a negative base/cap produce a negative sleep. *)
  let broken = { pol with Server.Resilience.backoff_base_s = -5. } in
  Alcotest.(check (float 1e-9)) "negative base clamps to 0" 0. (b broken 1);
  (* Positive jitter stays within its advertised span. *)
  let jit = { pol with Server.Resilience.jitter_frac = 0.5 } in
  for attempt = 1 to 32 do
    let v = b jit attempt in
    let base = Float.min 100. (10. *. (2. ** float_of_int (attempt - 1))) in
    if v < base || v >= base *. 1.5 then
      Alcotest.failf "jittered backoff %g outside [%g, %g)" v base (base *. 1.5)
  done

(* ------------------------------------------------------------------ *)
(* Calm probe traffic: touch every SALES template twice (the first
   arrival may be consumed as a half-open probe), one process per
   template so a slow template cannot starve the others. Starts 100 s
   after the current clock, past any trailing breaker cooldown, then
   runs the engine long enough for every probe to finish. *)

let probe_all_templates dbms ~run_for =
  let eng = Server.Dbms.engine dbms in
  let prng = Sim.Rng.split (Sim.Engine.rng eng) in
  List.iteri
    (fun i t ->
      Sim.Engine.spawn eng
        ~name:(Printf.sprintf "probe-%d" i)
        ~delay:100.
        (fun () ->
          for k = 0 to 1 do
            ignore
              (Server.Dbms.submit_catch dbms
                 (Workload.Template.instance prng t ~id:(900000 + (2 * i) + k)))
          done))
    (Workload.Sales.templates ());
  Sim.Engine.run eng ~until:(Sim.Engine.now eng +. run_for)

(* ------------------------------------------------------------------ *)
(* Integration: breakers trip under a hard fault window and recover once
   it clears and calm traffic probes them. Deterministic in the seed. *)

let test_breaker_trips_and_recovers () =
  let faults =
    [
      Faultsim.Fault.Alloc_glitch
        { at = 40.; duration = 300.; fail_prob = 0.9; clerks = [ "compile" ] };
    ]
  in
  let o =
    Server.Scenario.run_chaos ~faults ~seed:11 ~clients:12 ~warmup:0.
      ~measure:500. ~drain:500. ~think_mean:30. ()
  in
  let r = o.Server.Scenario.report in
  Alcotest.(check bool) "breakers tripped during the glitch" true
    (r.Health.Report.breaker_opens > 0);
  let count code = List.assoc code r.Health.Report.errors in
  Alcotest.(check bool) "the glitch produced structured 701s" true
    (count Health.Error.Insufficient_memory > 0);
  Alcotest.(check bool) "breaker refusals were recorded" true
    (count Health.Error.Breaker_open > 0);
  (* Rarely-arriving templates can sit half-open until traffic probes
     them; after a calm probe of every template, all must be closed. *)
  probe_all_templates o.Server.Scenario.dbms ~run_for:1000.;
  let r = Server.Dbms.health_report o.Server.Scenario.dbms () in
  Alcotest.(check (list (pair string breaker_state)))
    "every breaker recovered after the faults cleared" []
    r.Health.Report.breakers_open;
  Alcotest.(check bool) "tripped breakers closed again" true
    (r.Health.Report.breaker_closes > 0);
  Alcotest.(check int) "no query permanently stuck" 0 (Health.Report.stuck r)

(* ------------------------------------------------------------------ *)
(* Integration: on the canonical chaos schedule the supervised server
   loses nothing to its supervision — throughput at least matches the
   plain resilient server, nothing is stuck, and the taxonomy accounts
   for every client-visible failure. *)

let test_supervised_throughput () =
  let faults = Server.Scenario.chaos_faults () in
  let run config = Server.Scenario.run_chaos ~config ~faults ~seed:42 () in
  let sup = run (Server.Config.supervised ()) in
  let plain = run (Server.Config.resilient ()) in
  (* Tolerance pinned by the seed audit (test/seed_audit.exe): across
     seeds 1..20 the supervised/resilient completion ratio spans
     [0.974, 1.007] — supervision is not free at every seed (a watchdog
     cancel or breaker refusal can cost a completion the plain server
     kept), so "never loses more than 5%" is the seed-robust bound, not
     ">=". *)
  let ratio =
    float_of_int sup.Server.Scenario.completed
    /. float_of_int (max 1 plain.Server.Scenario.completed)
  in
  Alcotest.(check bool)
    (Printf.sprintf "supervised keeps >= 95%% of resilient completions \
                     (%d vs %d, ratio %.3f)"
       sup.Server.Scenario.completed plain.Server.Scenario.completed ratio)
    true (ratio >= 0.95);
  let r = sup.Server.Scenario.report in
  Alcotest.(check int) "no query permanently stuck" 0 (Health.Report.stuck r);
  (* Every failed client attempt returned a coded error: the client books
     and the error budget must agree exactly. *)
  let st = sup.Server.Scenario.client_stats in
  Alcotest.(check int) "every failure carries a taxonomy code"
    (st.Workload.Client.attempts - st.Workload.Client.succeeded)
    (Health.Report.total_errors r)

(* ------------------------------------------------------------------ *)
(* QCheck property: fuzzed fault schedules under full supervision. After
   the faults clear and the load drains, nothing may be stuck or leaked;
   the breaker books must balance; and once calm probe traffic touches
   every template, every tripped breaker must be closed. *)

let run_supervised_schedule seed =
  let faults = Test_fuzz.schedule_of_seed seed in
  List.iter Faultsim.Fault.validate faults;
  (* schedule_of_seed windows all end by ~350 s; clients stop at 400 and
     the drain runs to 1200, far past any retry/backoff tail. *)
  let o =
    Server.Scenario.run_chaos ~faults ~seed ~clients:8 ~warmup:0.
      ~measure:400. ~drain:800. ~think_mean:50. ()
  in
  let dbms = o.Server.Scenario.dbms in
  let r1 = o.Server.Scenario.report in
  if Health.Report.stuck r1 <> 0 then
    Alcotest.failf "seed %d: %d queries permanently stuck" seed
      (Health.Report.stuck r1);
  (* Taxonomy completeness: client books = error budget. *)
  let st = o.Server.Scenario.client_stats in
  if st.Workload.Client.attempts - st.Workload.Client.succeeded
     <> Health.Report.total_errors r1
  then
    Alcotest.failf "seed %d: %d failed attempts but %d coded errors" seed
      (st.Workload.Client.attempts - st.Workload.Client.succeeded)
      (Health.Report.total_errors r1);
  (* Breaker bookkeeping: every open is eventually paired with a close,
     except those still non-closed at the end. *)
  let unbalanced =
    r1.Health.Report.breaker_opens - r1.Health.Report.breaker_closes
  in
  if unbalanced <> List.length r1.Health.Report.breakers_open then
    Alcotest.failf "seed %d: breaker books don't balance: %d opens, %d closes, %d non-closed"
      seed r1.Health.Report.breaker_opens r1.Health.Report.breaker_closes
      (List.length r1.Health.Report.breakers_open);
  (* Probe wave in calm conditions; starts past any trailing cooldown. *)
  probe_all_templates dbms ~run_for:1000.;
  (match Sim.Engine.failures (Server.Dbms.engine dbms) with
  | [] -> ()
  | (name, exn, _) :: _ ->
      Alcotest.failf "seed %d: process failure in %s: %s" seed name
        (Printexc.to_string exn));
  let r2 = Server.Dbms.health_report dbms () in
  (match r2.Health.Report.breakers_open with
  | [] -> ()
  | l ->
      Alcotest.failf "seed %d: breakers still not closed after calm probes: %s"
        seed
        (String.concat ", "
           (List.map
              (fun (t, s) -> t ^ "=" ^ Health.Breaker.state_name s)
              l)));
  if Health.Report.stuck r2 <> 0 then
    Alcotest.failf "seed %d: %d probe queries stuck" seed (Health.Report.stuck r2);
  (* Nothing leaked: gateway monitors balanced, transient clerks empty. *)
  Array.iter
    (fun m ->
      if Qcore.Monitor.acquires m <> Qcore.Monitor.releases m then
        Alcotest.failf "seed %d: monitor %s: %d acquires vs %d releases" seed
          (Qcore.Monitor.name m) (Qcore.Monitor.acquires m)
          (Qcore.Monitor.releases m);
      if Qcore.Monitor.in_use m <> 0 then
        Alcotest.failf "seed %d: monitor %s still holds %d" seed
          (Qcore.Monitor.name m) (Qcore.Monitor.in_use m))
    (Qcore.Compile_gov.monitors (Server.Dbms.governor dbms));
  List.iter
    (fun name ->
      match List.assoc_opt name (Server.Dbms.clerks dbms) with
      | None -> ()
      | Some clerk ->
          if Dbmem.Manager.clerk_used clerk <> 0 then
            Alcotest.failf "seed %d: clerk %s not drained (%d bytes)" seed name
              (Dbmem.Manager.clerk_used clerk))
    [ "compile"; "execution"; "ballast" ]

let prop_supervision_invariants =
  QCheck.Test.make
    ~name:"supervised chaos runs drain clean and breakers recover"
    ~count:20
    QCheck.(int_range 0 10_000)
    (fun seed ->
      run_supervised_schedule seed;
      true)

(* ------------------------------------------------------------------ *)
(* Golden expect test: the canonical fixed-seed chaos scenario's health
   report, byte for byte — exactly what [dbsim health] prints. *)

let report_string r = Format.asprintf "%a@." Health.Report.pp r

let test_health_report_golden () =
  let o = Server.Scenario.run_chaos ~seed:42 () in
  let got = report_string o.Server.Scenario.report in
  let expected = Test_trace.read_file (Test_trace.golden_path "health_report.golden") in
  if got <> expected then (
    let oc = open_out "health_report.actual" in
    output_string oc got;
    close_out oc;
    Alcotest.failf
      "health report diverges from golden (%d vs %d bytes); actual report \
       written to health_report.actual"
      (String.length got) (String.length expected))

let suite =
  [
    ("error taxonomy", `Quick, test_error_taxonomy);
    ("breaker lifecycle", `Quick, test_breaker_lifecycle);
    ("breaker probe shed is not a failure", `Quick, test_breaker_probe_shed);
    ("watchdog escalation", `Quick, test_watchdog_escalation);
    ("starvation auditor widens and restores", `Quick, test_starvation_widens_and_restores);
    ("broker insists on deaf components", `Quick, test_broker_insists_on_deaf_components);
    ("backoff edge cases", `Quick, test_backoff_edges);
    ("breakers trip and recover under chaos", `Slow, test_breaker_trips_and_recovers);
    ("supervised throughput and accounting", `Slow, test_supervised_throughput);
    QCheck_alcotest.to_alcotest prop_supervision_invariants;
    ("health report matches golden", `Slow, test_health_report_golden);
  ]
