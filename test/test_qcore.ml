(* Tests for the paper's contribution: trend estimation, the memory broker,
   gateway monitors, and the compile governor. *)

open Qcore

let mib = Dbmem.Units.mib

(* ------------------------------------------------------------------ *)
(* Trend *)

let test_trend_linear_series () =
  let t = Trend.create ~window:8 () in
  for i = 0 to 7 do
    Trend.observe t ~time:(float_of_int i) (10. +. (3. *. float_of_int i))
  done;
  (match Trend.slope t with
  | Some s -> Alcotest.(check (float 1e-6)) "slope" 3.0 s
  | None -> Alcotest.fail "no slope");
  match Trend.predict t ~horizon:10. with
  | Some p -> Alcotest.(check (float 1e-6)) "prediction" (31. +. 30.) p
  | None -> Alcotest.fail "no prediction"

let test_trend_window_slides () =
  let t = Trend.create ~window:4 () in
  (* Old steep ramp followed by a plateau: once the plateau fills the
     window the slope must be ~0. *)
  for i = 0 to 3 do
    Trend.observe t ~time:(float_of_int i) (100. *. float_of_int i)
  done;
  for i = 4 to 10 do
    Trend.observe t ~time:(float_of_int i) 400.
  done;
  match Trend.slope t with
  | Some s -> Alcotest.(check (float 1e-6)) "flat" 0.0 s
  | None -> Alcotest.fail "no slope"

let test_trend_prediction_clamped () =
  let t = Trend.create ~window:4 () in
  Trend.observe t ~time:0. 100.;
  Trend.observe t ~time:1. 10.;
  match Trend.predict t ~horizon:100. with
  | Some p -> Alcotest.(check (float 1e-6)) "clamped at zero" 0.0 p
  | None -> Alcotest.fail "no prediction"

let test_trend_single_sample () =
  let t = Trend.create ~window:4 () in
  Trend.observe t ~time:0. 50.;
  Alcotest.(check (option (float 1e-9))) "no slope" None (Trend.slope t);
  Alcotest.(check (option (float 1e-9))) "predict falls back" (Some 50.)
    (Trend.predict t ~horizon:5.);
  Alcotest.(check (option (float 1e-9))) "last" (Some 50.) (Trend.last t)

let test_trend_empty () =
  let t = Trend.create ~window:4 () in
  Alcotest.(check int) "samples" 0 (Trend.samples t);
  Alcotest.(check (option (float 1e-9))) "predict" None (Trend.predict t ~horizon:1.);
  Alcotest.(check (option (float 1e-9))) "mean" None (Trend.mean t)

let test_trend_constant_series () =
  (* A flat signal must read as exactly zero slope (no drift from the
     least-squares arithmetic) and predict itself at any horizon. *)
  let t = Trend.create ~window:6 () in
  for i = 0 to 9 do
    Trend.observe t ~time:(float_of_int i) 123.
  done;
  Alcotest.(check (option (float 1e-9))) "slope" (Some 0.) (Trend.slope t);
  Alcotest.(check (option (float 1e-9))) "predict near" (Some 123.)
    (Trend.predict t ~horizon:1.);
  Alcotest.(check (option (float 1e-9))) "predict far" (Some 123.)
    (Trend.predict t ~horizon:1000.);
  Alcotest.(check (option (float 1e-9))) "mean" (Some 123.) (Trend.mean t)

let test_trend_decreasing_series () =
  (* Freeing memory: slope is negative, short-horizon prediction follows
     the line down, long-horizon prediction clamps at zero rather than
     going negative. *)
  let t = Trend.create ~window:8 () in
  for i = 0 to 7 do
    Trend.observe t ~time:(float_of_int i) (100. -. (10. *. float_of_int i))
  done;
  (match Trend.slope t with
  | Some s -> Alcotest.(check (float 1e-6)) "slope" (-10.) s
  | None -> Alcotest.fail "no slope");
  Alcotest.(check (option (float 1e-6))) "short horizon" (Some 20.)
    (Trend.predict t ~horizon:1.);
  Alcotest.(check (option (float 1e-6))) "long horizon clamps" (Some 0.)
    (Trend.predict t ~horizon:50.)

let test_trend_two_samples_minimum () =
  (* Exactly two samples is the smallest window that yields a slope; one
     fewer must yield none (covered by [single sample] too, but pinned
     here at the boundary). *)
  let t = Trend.create ~window:2 () in
  Trend.observe t ~time:0. 10.;
  Alcotest.(check (option (float 1e-9))) "1 sample: none" None (Trend.slope t);
  Trend.observe t ~time:2. 20.;
  Alcotest.(check (option (float 1e-9))) "2 samples" (Some 5.) (Trend.slope t)

let test_trend_backwards_time_rejected () =
  let t = Trend.create ~window:4 () in
  Trend.observe t ~time:5. 1.;
  Alcotest.check_raises "backwards"
    (Invalid_argument "Trend.observe: time went backwards") (fun () ->
      Trend.observe t ~time:4. 1.)

let prop_trend_slope_recovers_line =
  QCheck.Test.make ~name:"trend recovers slope of noiseless line" ~count:100
    QCheck.(pair (float_range (-50.) 50.) (float_range (-1000.) 1000.))
    (fun (m, b) ->
      let t = Trend.create ~window:10 () in
      for i = 0 to 9 do
        Trend.observe t ~time:(float_of_int i) (b +. (m *. float_of_int i))
      done;
      match Trend.slope t with
      | Some s -> Float.abs (s -. m) < 1e-6 +. (1e-9 *. Float.abs m)
      | None -> false)

(* ------------------------------------------------------------------ *)
(* Broker *)

let make_broker ?(total = mib 1000) ?(config = Broker.default_config) () =
  let eng = Sim.Engine.create () in
  let m = Dbmem.Manager.create ~total () in
  let broker = Broker.create eng m config in
  (eng, m, broker)

let test_broker_no_pressure_no_action () =
  let _, m, broker = make_broker () in
  let c1 = Dbmem.Manager.create_clerk m "one" in
  let comp = Broker.register broker ~name:"one" ~clerk:c1 () in
  Dbmem.Manager.alloc_exn c1 (mib 100);
  Broker.tick broker;
  Alcotest.(check bool) "no pressure" false (Broker.under_pressure broker);
  match Broker.last_notification comp with
  | Some n ->
      Alcotest.(check bool) "can grow" true (n.Broker.verdict = Broker.Can_grow);
      Alcotest.(check bool) "target above usage" true (n.Broker.target >= mib 100)
  | None -> Alcotest.fail "no notification"

let test_broker_detects_pressure_from_trend () =
  let eng, m, broker = make_broker ~total:(mib 1000) () in
  let hog = Dbmem.Manager.create_clerk m "hog" in
  let other = Dbmem.Manager.create_clerk m "other" in
  let comp_hog = Broker.register broker ~name:"hog" ~clerk:hog () in
  let _comp_other = Broker.register broker ~name:"other" ~clerk:other () in
  Dbmem.Manager.alloc_exn other (mib 200);
  (* Grow the hog by 100 MiB per tick; after a few ticks the extrapolation
     must exceed the budget even though current usage is below it. *)
  Broker.start broker;
  Sim.Engine.spawn eng (fun () ->
      for _ = 1 to 6 do
        Dbmem.Manager.alloc_exn hog (mib 100);
        Sim.Engine.sleep 1.0
      done);
  Sim.Engine.run eng ~until:6.5;
  Alcotest.(check bool) "pressure detected" true (Broker.under_pressure broker);
  Alcotest.(check bool) "usage itself still below budget" true
    (Dbmem.Manager.used m < Broker.brokered_bytes broker);
  match Broker.last_notification comp_hog with
  | Some n -> Alcotest.(check bool) "prediction exceeds usage" true
      (n.Broker.predicted > Dbmem.Manager.clerk_used hog)
  | None -> Alcotest.fail "no notification"

let test_broker_targets_sum_within_budget () =
  let _, m, broker = make_broker ~total:(mib 100) () in
  let a = Dbmem.Manager.create_clerk m "a" in
  let b = Dbmem.Manager.create_clerk m "b" in
  let ca = Broker.register broker ~name:"a" ~clerk:a () in
  let cb = Broker.register broker ~name:"b" ~clerk:b () in
  Dbmem.Manager.alloc_exn a (mib 70);
  Dbmem.Manager.alloc_exn b (mib 28);
  Broker.tick broker;
  Alcotest.(check bool) "pressure" true (Broker.under_pressure broker);
  let total_target = Broker.target ca + Broker.target cb in
  Alcotest.(check bool) "targets within brokered budget" true
    (total_target <= Broker.brokered_bytes broker + 2)

let test_broker_shrink_verdict () =
  let _, m, broker = make_broker ~total:(mib 100) () in
  let a = Dbmem.Manager.create_clerk m "a" in
  let b = Dbmem.Manager.create_clerk m "b" in
  let ca = Broker.register broker ~name:"a" ~clerk:a ~weight:1. () in
  let _cb = Broker.register broker ~name:"b" ~clerk:b ~weight:10. () in
  (* a uses far more than its weighted share. *)
  Dbmem.Manager.alloc_exn a (mib 80);
  Dbmem.Manager.alloc_exn b (mib 18);
  Broker.tick broker;
  match Broker.last_notification ca with
  | Some n -> Alcotest.(check bool) "must shrink" true (n.Broker.verdict = Broker.Must_shrink)
  | None -> Alcotest.fail "no notification"

let test_broker_min_bytes_floor () =
  let _, m, broker = make_broker ~total:(mib 100) () in
  let a = Dbmem.Manager.create_clerk m "a" in
  let b = Dbmem.Manager.create_clerk m "b" in
  let ca = Broker.register broker ~name:"a" ~clerk:a ~min_bytes:(mib 30) () in
  let _ = Broker.register broker ~name:"b" ~clerk:b () in
  Dbmem.Manager.alloc_exn a (mib 1);
  Dbmem.Manager.alloc_exn b (mib 95);
  Broker.tick broker;
  Alcotest.(check bool) "floor respected" true (Broker.target ca >= mib 30)

let test_broker_notify_callback_runs () =
  let _, m, broker = make_broker () in
  let a = Dbmem.Manager.create_clerk m "a" in
  let seen = ref [] in
  let _ =
    Broker.register broker ~name:"a" ~clerk:a
      ~notify:(fun n -> seen := n :: !seen)
      ()
  in
  Broker.tick broker;
  Broker.tick broker;
  Alcotest.(check int) "notified each tick" 2 (List.length !seen)

let test_broker_periodic_ticks () =
  let eng, _, broker = make_broker () in
  Broker.start broker;
  Sim.Engine.run eng ~until:10.5;
  Alcotest.(check int) "10 ticks in 10.5s at 1Hz" 10 (Broker.ticks broker);
  Broker.stop broker;
  Sim.Engine.run eng ~until:20.0;
  Alcotest.(check int) "no ticks after stop" 10 (Broker.ticks broker)

(* ------------------------------------------------------------------ *)
(* Throttle_config *)

let test_config_default_valid () =
  let c = Throttle_config.default () in
  Throttle_config.validate c ~cpus:8;
  Alcotest.(check int) "three monitors" 3 (List.length c.Throttle_config.levels)

let test_config_paper_slot_counts () =
  (* Paper: 4 concurrent per CPU (small), 1 per CPU (medium), 1 (big). *)
  let c = Throttle_config.default () in
  match c.Throttle_config.levels with
  | [ small; medium; big ] ->
      Alcotest.(check int) "small" 32
        (Throttle_config.slot_count small.Throttle_config.slots ~cpus:8);
      Alcotest.(check int) "medium" 8
        (Throttle_config.slot_count medium.Throttle_config.slots ~cpus:8);
      Alcotest.(check int) "big" 1
        (Throttle_config.slot_count big.Throttle_config.slots ~cpus:8)
  | _ -> Alcotest.fail "expected 3 levels"

let test_config_monotone_thresholds () =
  let c = Throttle_config.default () in
  let rec thresholds = function
    | (a : Throttle_config.level) :: rest -> a.Throttle_config.base_threshold :: thresholds rest
    | [] -> []
  in
  let ts = thresholds c.Throttle_config.levels in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "increasing" true (increasing ts)

let test_config_invalid_rejected () =
  let base = Throttle_config.default () in
  let flipped = { base with Throttle_config.levels = List.rev base.Throttle_config.levels } in
  Alcotest.(check bool) "flipped ladder rejected" true
    (try
       Throttle_config.validate flipped ~cpus:8;
       false
     with Invalid_argument _ -> true)

let test_dynamic_threshold_formula () =
  let level =
    {
      Throttle_config.lname = "medium";
      base_threshold = mib 48;
      slots = Throttle_config.Per_cpu 1;
      timeout = 300.;
      fraction = 0.4;
      min_threshold = mib 1;
      max_threshold = mib 10_000;
    }
  in
  (* threshold = target * F / S *)
  let thr = Throttle_config.dynamic_threshold level ~target:(mib 1000) ~population:10 in
  Alcotest.(check int) "target*F/S" (mib 40) thr;
  (* Fewer compilations below: each may use more before upgrading. *)
  let thr2 = Throttle_config.dynamic_threshold level ~target:(mib 1000) ~population:2 in
  Alcotest.(check int) "larger with smaller population" (mib 200) thr2;
  (* Clamping. *)
  let thr3 = Throttle_config.dynamic_threshold level ~target:(mib 1000) ~population:100_000 in
  Alcotest.(check int) "min clamp" (mib 1) thr3;
  let thr4 =
    Throttle_config.dynamic_threshold
      { level with Throttle_config.max_threshold = mib 50 }
      ~target:(mib 1000) ~population:1
  in
  Alcotest.(check int) "max clamp" (mib 50) thr4;
  (* No target known: fall back to the static threshold. *)
  let thr5 = Throttle_config.dynamic_threshold level ~target:0 ~population:5 in
  Alcotest.(check int) "fallback" (mib 48) thr5

(* ------------------------------------------------------------------ *)
(* Monitor *)

let test_monitor_blocks_over_slots () =
  let eng = Sim.Engine.create () in
  let m = Monitor.create eng ~name:"g" ~slots:2 ~timeout:100. () in
  let acquired = ref 0 in
  for _ = 1 to 3 do
    Sim.Engine.spawn eng (fun () ->
        match Monitor.acquire m () with
        | Ok () -> incr acquired
        | Error `Timeout -> ())
  done;
  Sim.Engine.run eng ~until:1.0;
  Alcotest.(check int) "two admitted" 2 !acquired;
  Alcotest.(check int) "one queued" 1 (Monitor.queued m);
  Monitor.release m;
  Sim.Engine.run eng ~until:2.0;
  Alcotest.(check int) "third admitted after release" 3 !acquired

let test_monitor_timeout () =
  let eng = Sim.Engine.create () in
  let m = Monitor.create eng ~name:"g" ~slots:1 ~timeout:5. () in
  let results = ref [] in
  Sim.Engine.spawn eng (fun () ->
      ignore (Monitor.acquire m ());
      Sim.Engine.sleep 100.);
  Sim.Engine.spawn eng ~delay:1.0 (fun () ->
      results := Monitor.acquire m () :: !results);
  Sim.Engine.run eng ~until:20.0;
  (match !results with
  | [ Error `Timeout ] -> ()
  | _ -> Alcotest.fail "expected timeout");
  Alcotest.(check int) "timeout counted" 1 (Monitor.timeouts m)

(* ------------------------------------------------------------------ *)
(* Compile governor *)

type gov_env = {
  eng : Sim.Engine.t;
  mgr : Dbmem.Manager.t;
  gov : Compile_gov.t;
}

let make_gov ?(total = mib 4096) ?(cpus = 2) ?(config = Throttle_config.default ())
    ?(enabled = true) () =
  let eng = Sim.Engine.create () in
  let mgr = Dbmem.Manager.create ~total () in
  let clerk = Dbmem.Manager.create_clerk mgr "compile" in
  let gov = Compile_gov.create eng mgr ~clerk ~cpus ~config ~enabled () in
  { eng; mgr; gov }

let test_gov_small_query_unthrottled () =
  let { eng; gov; _ } = make_gov () in
  let ok = ref false in
  Sim.Engine.spawn eng (fun () ->
      let s = Compile_gov.begin_compile gov in
      (match Compile_gov.alloc s (mib 1) with
      | Ok () -> ok := true
      | Error _ -> ());
      Alcotest.(check int) "below first threshold: no monitor" 0 (Compile_gov.level s);
      Compile_gov.end_compile s);
  Sim.Engine.run_all eng;
  Alcotest.(check bool) "alloc ok" true !ok

let test_gov_crossing_thresholds_acquires_monitors () =
  let { eng; gov; _ } = make_gov ~cpus:8 () in
  Sim.Engine.spawn eng (fun () ->
      let s = Compile_gov.begin_compile gov in
      ignore (Compile_gov.alloc s (mib 10));
      Alcotest.(check int) "small monitor" 1 (Compile_gov.level s);
      ignore (Compile_gov.alloc s (mib 150));
      Alcotest.(check int) "medium monitor" 2 (Compile_gov.level s);
      ignore (Compile_gov.alloc s (mib 400));
      Alcotest.(check int) "big monitor" 3 (Compile_gov.level s);
      Compile_gov.end_compile s;
      Alcotest.(check int) "released" 0 (Compile_gov.level s));
  Sim.Engine.run_all eng;
  let monitors = Compile_gov.monitors gov in
  Array.iter
    (fun m -> Alcotest.(check int) ("freed " ^ Monitor.name m) 0 (Monitor.in_use m))
    monitors

let test_gov_population_accounting () =
  let { eng; gov; _ } = make_gov ~cpus:8 () in
  Sim.Engine.spawn eng (fun () ->
      let s1 = Compile_gov.begin_compile gov in
      let s2 = Compile_gov.begin_compile gov in
      Alcotest.(check int) "two below ladder" 2 (Compile_gov.population gov 0);
      ignore (Compile_gov.alloc s1 (mib 10));
      Alcotest.(check int) "one small" 1 (Compile_gov.population gov 1);
      Alcotest.(check int) "one below" 1 (Compile_gov.population gov 0);
      Compile_gov.end_compile s1;
      Compile_gov.end_compile s2;
      Alcotest.(check int) "none left" 0 (Compile_gov.population gov 0));
  Sim.Engine.run_all eng;
  Alcotest.(check int) "no active sessions" 0 (Compile_gov.active_sessions gov)

let test_gov_big_serialized () =
  (* Only one compilation may hold the big monitor; a second big compile
     must wait for the first to finish. *)
  let { eng; gov; _ } = make_gov ~cpus:8 () in
  let finish_times = ref [] in
  let spawn_big name delay =
    Sim.Engine.spawn eng ~name ~delay (fun () ->
        let s = Compile_gov.begin_compile gov in
        ignore (Compile_gov.alloc s (mib 500));
        Sim.Engine.sleep 10.;
        Compile_gov.end_compile s;
        finish_times := (name, Sim.Engine.now eng) :: !finish_times)
  in
  spawn_big "q1" 0.0;
  spawn_big "q2" 0.1;
  Sim.Engine.run_all eng;
  match List.rev !finish_times with
  | [ ("q1", t1); ("q2", t2) ] ->
      Alcotest.(check (float 1e-6)) "q1 finishes at 10" 10.0 t1;
      Alcotest.(check bool) "q2 serialized behind q1" true (t2 >= 20.0)
  | _ -> Alcotest.fail "expected both to finish"

let test_gov_timeout_error () =
  let config =
    (* Tiny timeout on the big gateway so the test is quick. *)
    let d = Throttle_config.default () in
    {
      d with
      Throttle_config.levels =
        List.map
          (fun (l : Throttle_config.level) ->
            if l.Throttle_config.lname = "big" then { l with Throttle_config.timeout = 600. }
            else l)
          d.Throttle_config.levels;
    }
  in
  let { eng; gov; _ } = make_gov ~cpus:8 ~config () in
  let errors = ref [] in
  Sim.Engine.spawn eng (fun () ->
      let s = Compile_gov.begin_compile gov in
      ignore (Compile_gov.alloc s (mib 500));
      Sim.Engine.sleep 10_000.;
      Compile_gov.end_compile s);
  Sim.Engine.spawn eng ~delay:1.0 (fun () ->
      let s = Compile_gov.begin_compile gov in
      (match Compile_gov.alloc s (mib 500) with
      | Error e -> errors := e :: !errors
      | Ok () -> ());
      Compile_gov.end_compile s);
  Sim.Engine.run eng ~until:2_000.;
  match !errors with
  | [ { Health.Error.code = Health.Error.Memory_wait_timeout; detail = "big" } ]
    ->
      ()
  | _ -> Alcotest.fail "expected big-gateway timeout"

let test_gov_disabled_never_blocks () =
  let { eng; gov; _ } = make_gov ~cpus:1 ~enabled:false () in
  let done_count = ref 0 in
  for _ = 1 to 10 do
    Sim.Engine.spawn eng (fun () ->
        let s = Compile_gov.begin_compile gov in
        ignore (Compile_gov.alloc s (mib 300));
        Sim.Engine.sleep 10.;
        Compile_gov.end_compile s;
        incr done_count)
  done;
  Sim.Engine.run eng ~until:11.;
  (* With throttling disabled all ten big compiles run concurrently. *)
  Alcotest.(check int) "all finished concurrently" 10 !done_count

let test_gov_oom_propagates () =
  let { eng; gov; _ } = make_gov ~total:(mib 100) ~enabled:false () in
  let result = ref None in
  Sim.Engine.spawn eng (fun () ->
      let s = Compile_gov.begin_compile gov in
      result := Some (Compile_gov.alloc s (mib 500));
      Compile_gov.end_compile s);
  Sim.Engine.run_all eng;
  match !result with
  | Some (Error { Health.Error.code = Health.Error.Insufficient_memory; _ }) ->
      ()
  | _ -> Alcotest.fail "expected OOM"

let test_gov_memory_freed_on_end () =
  let { eng; gov; mgr } = make_gov () in
  Sim.Engine.spawn eng (fun () ->
      let s = Compile_gov.begin_compile gov in
      ignore (Compile_gov.alloc s (mib 64));
      ignore (Compile_gov.alloc s (mib 64));
      Alcotest.(check int) "usage" (mib 128) (Compile_gov.usage s);
      Compile_gov.end_compile s;
      Compile_gov.end_compile s (* idempotent *));
  Sim.Engine.run_all eng;
  Alcotest.(check int) "all freed" 0 (Dbmem.Manager.used mgr)

let test_gov_partial_free () =
  let { eng; gov; _ } = make_gov () in
  Sim.Engine.spawn eng (fun () ->
      let s = Compile_gov.begin_compile gov in
      ignore (Compile_gov.alloc s (mib 64));
      Compile_gov.free s (mib 32);
      Alcotest.(check int) "usage after free" (mib 32) (Compile_gov.usage s);
      Alcotest.(check int) "peak unchanged" (mib 64) (Compile_gov.peak s);
      Compile_gov.end_compile s);
  Sim.Engine.run_all eng

let test_gov_dynamic_threshold_from_broker () =
  let { eng; gov; _ } = make_gov ~cpus:8 () in
  (* Before any broker input: static threshold. *)
  Alcotest.(check int) "static medium" (mib 96) (Compile_gov.threshold gov 1);
  Compile_gov.on_notification gov
    {
      Broker.verdict = Broker.Hold_rate;
      target = mib 640;
      predicted = mib 700;
      pressure = true;
    };
  Alcotest.(check int) "target recorded" (mib 640) (Compile_gov.broker_target gov);
  (* With population S=0 -> max(1) and F=0.35: 640*0.35 = 224 MiB. *)
  Alcotest.(check int) "dynamic medium" (mib 224) (Compile_gov.threshold gov 1);
  Sim.Engine.spawn eng (fun () ->
      (* Put 7 sessions in the small category: S=7 shrinks the threshold. *)
      let sessions = List.init 7 (fun _ ->
          let s = Compile_gov.begin_compile gov in
          ignore (Compile_gov.alloc s (mib 10));
          s)
      in
      let expected = mib 32 in (* 640 * 0.35 / 7 = 32 MiB *)
      Alcotest.(check int) "threshold shrinks with population" expected
        (Compile_gov.threshold gov 1);
      List.iter Compile_gov.end_compile sessions);
  Sim.Engine.run_all eng

let test_gov_stop_early_signal () =
  let { gov; _ } = make_gov () in
  Alcotest.(check bool) "initially false" false (Compile_gov.should_stop_early gov);
  Compile_gov.on_notification gov
    { Broker.verdict = Broker.Must_shrink; target = mib 100; predicted = mib 900; pressure = true };
  Alcotest.(check bool) "set on must-shrink" true (Compile_gov.should_stop_early gov);
  Compile_gov.on_notification gov
    { Broker.verdict = Broker.Can_grow; target = mib 900; predicted = mib 100; pressure = false };
  Alcotest.(check bool) "cleared on can-grow" false (Compile_gov.should_stop_early gov)

let test_gov_stop_early_requires_enabled () =
  let { gov; _ } = make_gov ~enabled:false () in
  Compile_gov.on_notification gov
    { Broker.verdict = Broker.Must_shrink; target = mib 100; predicted = mib 900; pressure = true };
  Alcotest.(check bool) "disabled governor never asks to stop" false
    (Compile_gov.should_stop_early gov)

let test_broker_hold_rate_verdict () =
  let eng, m, broker = make_broker ~total:(mib 100) () in
  let a = Dbmem.Manager.create_clerk m "a" in
  let b = Dbmem.Manager.create_clerk m "b" in
  let ca = Broker.register broker ~name:"a" ~clerk:a () in
  let _cb = Broker.register broker ~name:"b" ~clerk:b () in
  (* Feed a growth trend for a: time must advance between samples for the
     regression to see a slope. *)
  Dbmem.Manager.alloc_exn b (mib 60);
  Sim.Engine.spawn eng (fun () ->
      for _ = 1 to 6 do
        Dbmem.Manager.alloc_exn a (mib 5);
        Broker.tick broker;
        Sim.Engine.sleep 1.0
      done);
  Sim.Engine.run_all eng;
  match Broker.last_notification ca with
  | Some n ->
      Alcotest.(check bool) "prediction above usage" true
        (n.Broker.predicted > Dbmem.Manager.clerk_used a)
  | None -> Alcotest.fail "no notification"

let test_monitor_wait_stats () =
  let eng = Sim.Engine.create () in
  let m = Monitor.create eng ~name:"g" ~slots:1 ~timeout:100. () in
  Sim.Engine.spawn eng (fun () ->
      ignore (Monitor.acquire m ());
      Sim.Engine.sleep 7.;
      Monitor.release m);
  Sim.Engine.spawn eng ~delay:2.0 (fun () ->
      ignore (Monitor.acquire m ());
      Monitor.release m);
  Sim.Engine.run_all eng;
  let ws = Monitor.wait_stats m in
  Alcotest.(check int) "two acquires measured" 2 (Sim.Stats.Online.count ws);
  Alcotest.(check (float 1e-6)) "max wait is 5s" 5.0 (Sim.Stats.Online.max ws)

(* Paper §2.2: "if many large queries are compiling simultaneously, each
   compilation can consume a significant fraction of system memory
   [and they] can deadlock on each other ... Even if the system aborts most
   of these queries to allow a few to complete, those aborted queries
   likely need to be resubmitted." With the governor, the ladder serializes
   the growth and everyone completes. *)
let test_gov_prevents_mutual_starvation () =
  let run ~enabled =
    let eng = Sim.Engine.create () in
    let mgr = Dbmem.Manager.create ~total:(mib 1024) () in
    let clerk = Dbmem.Manager.create_clerk mgr "compile" in
    let gov =
      Compile_gov.create eng mgr ~clerk ~cpus:1
        ~config:(Throttle_config.default ()) ~enabled ()
    in
    let outcomes = ref [] in
    for i = 1 to 2 do
      Sim.Engine.spawn eng ~name:(Printf.sprintf "q%d" i) (fun () ->
          let s = Compile_gov.begin_compile gov in
          let ok = ref true in
          (* Grow to 800 MiB in 16 MiB steps, as a compilation would. *)
          (try
             for _ = 1 to 50 do
               (match Compile_gov.alloc s (mib 16) with
               | Ok () -> ()
               | Error _ ->
                   ok := false;
                   raise Exit);
               Sim.Engine.sleep 1.0
             done
           with Exit -> ());
          Compile_gov.end_compile s;
          outcomes := !ok :: !outcomes)
    done;
    Sim.Engine.run eng ~until:100_000.;
    List.length (List.filter (fun x -> x) !outcomes)
  in
  (* Unthrottled: the two compilations exhaust memory together and at
     least one aborts. Throttled: the medium gateway (1 slot at 1 CPU)
     serializes the growth and both finish. *)
  Alcotest.(check bool) "unthrottled: someone aborts" true (run ~enabled:false < 2);
  Alcotest.(check int) "throttled: both complete" 2 (run ~enabled:true)

let test_gov_progress_priority () =
  (* Two compilations blocked at the big monitor: the one with more memory
     already allocated is admitted first, even though it arrived later. *)
  let { eng; gov; _ } = make_gov ~cpus:8 () in
  let order = ref [] in
  Sim.Engine.spawn eng ~name:"holder" (fun () ->
      let s = Compile_gov.begin_compile gov in
      ignore (Compile_gov.alloc s (mib 500));
      Sim.Engine.sleep 50.;
      Compile_gov.end_compile s);
  (* "small-appetite" arrives first but has allocated less. *)
  Sim.Engine.spawn eng ~name:"less-progress" ~delay:1.0 (fun () ->
      let s = Compile_gov.begin_compile gov in
      ignore (Compile_gov.alloc s (mib 100));
      Sim.Engine.sleep 5.0;
      (match Compile_gov.alloc s (mib 400) with
      | Ok () -> order := "less" :: !order
      | Error _ -> ());
      Compile_gov.end_compile s);
  Sim.Engine.spawn eng ~name:"more-progress" ~delay:2.0 (fun () ->
      let s = Compile_gov.begin_compile gov in
      ignore (Compile_gov.alloc s (mib 300));
      Sim.Engine.sleep 6.0;
      (match Compile_gov.alloc s (mib 300) with
      | Ok () -> order := "more" :: !order
      | Error _ -> ());
      Compile_gov.end_compile s);
  Sim.Engine.run_all eng;
  Alcotest.(check (list string)) "most progress first" [ "more"; "less" ]
    (List.rev !order)

(* Thresholds never invert down the ladder, whatever the broker target and
   gateway populations. *)
let prop_gov_thresholds_monotone =
  QCheck.Test.make ~name:"ladder thresholds are monotone under any target" ~count:200
    QCheck.(pair (int_range 0 4096) (list_of_size Gen.(int_range 0 3) (int_range 0 64)))
    (fun (target_mib, pops) ->
      let { eng; gov; _ } = make_gov ~cpus:8 () in
      Compile_gov.on_notification gov
        { Broker.verdict = Broker.Hold_rate; target = mib target_mib;
          predicted = mib target_mib; pressure = true };
      (* Put random populations in the lower categories. *)
      let sessions = ref [] in
      Sim.Engine.spawn eng (fun () ->
          List.iteri
            (fun level count ->
              for _ = 1 to min count 4 do
                let s = Compile_gov.begin_compile gov in
                let bytes =
                  match level with
                  | 0 -> 1024
                  | 1 -> mib 4
                  | _ -> mib 200
                in
                (match Compile_gov.alloc s bytes with Ok () | Error _ -> ());
                sessions := s :: !sessions
              done)
            pops);
      Sim.Engine.run eng ~until:10_000.;
      let t0 = Compile_gov.threshold gov 0 in
      let t1 = Compile_gov.threshold gov 1 in
      let t2 = Compile_gov.threshold gov 2 in
      List.iter Compile_gov.end_compile !sessions;
      t0 < t1 && t1 < t2)

(* Paper invariant: concurrency at each monitor never exceeds its slots,
   for random compilation workloads. *)
let prop_gov_respects_slot_limits =
  QCheck.Test.make ~name:"gateway concurrency never exceeds slots" ~count:30
    QCheck.(pair (int_range 1 4) (list_of_size Gen.(int_range 5 25) (int_range 1 400)))
    (fun (cpus, sizes) ->
      let { eng; gov; _ } = make_gov ~cpus ~total:(mib 100_000) () in
      let monitors = Compile_gov.monitors gov in
      let violated = ref false in
      let check_limits () =
        Array.iter
          (fun m -> if Monitor.in_use m > Monitor.slots m then violated := true)
          monitors
      in
      List.iteri
        (fun i size_mib ->
          Sim.Engine.spawn eng ~delay:(float_of_int (i mod 7)) (fun () ->
              let s = Compile_gov.begin_compile gov in
              let chunk = mib (max 1 (size_mib / 8)) in
              (try
                 for _ = 1 to 8 do
                   (match Compile_gov.alloc s chunk with
                   | Ok () -> ()
                   | Error _ -> raise Exit);
                   check_limits ();
                   Sim.Engine.sleep 1.0
                 done
               with Exit -> ());
              Compile_gov.end_compile s))
        sizes;
      Sim.Engine.run eng ~until:100_000.;
      check_limits ();
      (not !violated)
      && Compile_gov.active_sessions gov = 0
      && Sim.Engine.failures eng = [])

(* ------------------------------------------------------------------ *)
(* Arbiter *)

let claim ?(weight = 1.) ?(min_share = 0.) ?(max_share = 1.) predicted =
  { Arbiter.weight; min_share; max_share; predicted }

let test_arbiter_plan_surplus_lends_weighted () =
  (* Both pools need their 20 MiB floor; the 60 MiB surplus splits 1:3. *)
  let total = mib 100 in
  let bs =
    Arbiter.plan ~total
      [
        claim ~weight:1. ~min_share:0.2 (mib 10);
        claim ~weight:3. ~min_share:0.2 (mib 10);
      ]
  in
  Alcotest.(check (list int)) "weighted surplus" [ mib 35; mib 65 ] bs

let test_arbiter_plan_scarcity_floors () =
  (* Demand outstrips the machine: floors are untouchable, the rest is
     split by weighted unmet demand, and nothing is lost to rounding. *)
  let total = mib 100 in
  let cs =
    [
      claim ~min_share:0.3 (mib 90);
      claim ~min_share:0.5 (mib 90);
    ]
  in
  let bs = Arbiter.plan ~total cs in
  List.iter2
    (fun c b ->
      Alcotest.(check bool) "floor honoured" true
        (b >= int_of_float (c.Arbiter.min_share *. float_of_int total)))
    cs bs;
  Alcotest.(check int) "nothing wasted under scarcity" total
    (List.fold_left ( + ) 0 bs)

let test_arbiter_plan_caps () =
  (* A capped pool cannot absorb surplus past max_share even when it is
     the only one demanding memory. *)
  let bs =
    Arbiter.plan ~total:(mib 100)
      [ claim ~max_share:0.1 (mib 90); claim (mib 0) ]
  in
  Alcotest.(check int) "cap binds" (mib 10) (List.hd bs)

let prop_arbiter_plan_invariants =
  QCheck.Test.make ~name:"arbiter plan: sum <= total, floors and caps held"
    ~count:300
    QCheck.(
      pair (int_range 1 10_000)
        (list_of_size Gen.(int_range 1 8)
           (quad (int_range 1 10) (int_range 0 100) (int_range 0 100)
              (int_range 0 20_000))))
    (fun (total_mib, raw) ->
      let total = mib total_mib in
      let n = float_of_int (List.length raw) in
      let cs =
        List.map
          (fun (w, mn, span, pred) ->
            (* Normalise so the min_shares can sum to at most 1. *)
            let min_share = float_of_int mn /. 100. /. n in
            let max_share = Float.min 1. (min_share +. (float_of_int span /. 100.)) in
            claim ~weight:(float_of_int w) ~min_share ~max_share (mib pred))
          raw
      in
      let bs = Arbiter.plan ~total cs in
      List.fold_left ( + ) 0 bs <= total
      && List.for_all2
           (fun c b ->
             let fl = int_of_float (c.Arbiter.min_share *. float_of_int total) in
             let cap =
               max fl (int_of_float (c.Arbiter.max_share *. float_of_int total))
             in
             b >= fl && b <= cap)
           cs bs)

(* A registered pool for arbiter integration tests: budget changes land
   in [budget_log]; [reclaim] frees everything asked of it. *)
let make_arb ?(total = mib 100) ?(interval = 1.0) () =
  let eng = Sim.Engine.create () in
  let arb =
    Arbiter.create eng ~total
      { Arbiter.interval; horizon = 2.0; window = 4; deadband = mib 1 }
  in
  (eng, arb)

let test_arbiter_redistributes_idle_to_pressured () =
  let eng, arb = make_arb () in
  let idle =
    Arbiter.register arb ~name:"idle" ~min_share:0.2 ~budget:(mib 50)
      ~used:(fun () -> 0)
      ~set_budget:(fun _ -> ())
      ~reclaim:(fun _ -> 0)
      ()
  in
  let busy =
    Arbiter.register arb ~name:"busy" ~budget:(mib 50)
      ~used:(fun () -> mib 40)
      ~demand:(fun () -> mib 120)
      ~set_budget:(fun _ -> ())
      ~reclaim:(fun _ -> 0)
      ()
  in
  Arbiter.start arb;
  Sim.Engine.run eng ~until:5.5;
  Alcotest.(check bool) "ticked" true (Arbiter.ticks arb >= 5);
  Alcotest.(check bool) "busy grew" true (Arbiter.budget busy > mib 50);
  Alcotest.(check bool) "idle lent" true (Arbiter.budget idle < mib 50);
  Alcotest.(check bool) "idle keeps its floor" true
    (Arbiter.budget idle >= Arbiter.floor_bytes idle);
  Alcotest.(check bool) "grants fit the machine" true
    (Arbiter.budget idle + Arbiter.budget busy <= Arbiter.total arb);
  Alcotest.(check bool) "moved counted" true (Arbiter.moved_bytes arb > 0);
  Alcotest.(check bool) "scarce flagged" true (Arbiter.scarce arb)

let test_arbiter_reclaim_on_shrink () =
  (* The hog sits on 60 MiB while a rival demands twice the machine: the
     hog's budget must fall below its usage and the reclaim hook must be
     asked for the difference. *)
  let eng, arb = make_arb () in
  let reclaim_asked = ref 0 in
  let hog =
    Arbiter.register arb ~name:"hog" ~min_share:0.2 ~budget:(mib 60)
      ~used:(fun () -> mib 60)
      ~set_budget:(fun _ -> ())
      ~reclaim:(fun n ->
        reclaim_asked := !reclaim_asked + n;
        n)
      ()
  in
  let _rival =
    Arbiter.register arb ~name:"rival" ~budget:(mib 40)
      ~used:(fun () -> mib 40)
      ~demand:(fun () -> mib 200)
      ~set_budget:(fun _ -> ())
      ~reclaim:(fun _ -> 0)
      ()
  in
  Arbiter.start arb;
  Sim.Engine.run eng ~until:3.5;
  Alcotest.(check bool) "hog squeezed below usage" true
    (Arbiter.budget hog < mib 60);
  Alcotest.(check bool) "reclaim hook asked" true (!reclaim_asked > 0);
  Alcotest.(check int) "freed bytes counted" !reclaim_asked
    (Arbiter.reclaimed_bytes arb)

let test_arbiter_offline_lends_and_claws_back () =
  (* Shard-failure accounting: marking a pool offline strips its floor
     and cap, so the next ticks lend its whole share to the survivor
     (down to the one-byte keepalive); flipping it back online restores
     the floor. Throughout, grants never sum past the machine plus one
     keepalive byte per pool. *)
  let eng, arb = make_arb () in
  let check_sum tag a b =
    Alcotest.(check bool) tag true
      (Arbiter.budget a + Arbiter.budget b <= Arbiter.total arb + 2)
  in
  let survivor =
    Arbiter.register arb ~name:"survivor" ~min_share:0.25 ~budget:(mib 50)
      ~used:(fun () -> mib 40)
      ~demand:(fun () -> mib 200)
      ~set_budget:(fun _ -> ())
      ~reclaim:(fun _ -> 0)
      ()
  in
  let victim =
    Arbiter.register arb ~name:"victim" ~min_share:0.25 ~budget:(mib 50)
      ~used:(fun () -> mib 10)
      ~set_budget:(fun _ -> ())
      ~reclaim:(fun n -> n)
      ()
  in
  Arbiter.start arb;
  Sim.Engine.run eng ~until:2.5;
  Alcotest.(check bool) "online pool keeps its floor" true
    (Arbiter.budget victim >= Arbiter.floor_bytes victim);
  check_sum "grants fit while both online" survivor victim;
  Arbiter.set_offline victim true;
  Alcotest.(check bool) "offline flag reads back" true (Arbiter.offline victim);
  Sim.Engine.run eng ~until:6.5;
  Alcotest.(check bool) "down pool drained to keepalive" true
    (Arbiter.budget victim <= 1);
  Alcotest.(check bool) "survivor absorbed the share" true
    (Arbiter.budget survivor > mib 50);
  check_sum "grants fit with one pool down" survivor victim;
  Arbiter.set_offline victim false;
  Sim.Engine.run eng ~until:10.5;
  Alcotest.(check bool) "rejoined pool clawed its floor back" true
    (Arbiter.budget victim >= Arbiter.floor_bytes victim);
  check_sum "grants fit after rejoin" survivor victim

let test_arbiter_register_validation () =
  let _, arb = make_arb () in
  let reg ?(min_share = 0.) ?(weight = 1.) name =
    ignore
      (Arbiter.register arb ~name ~weight ~min_share ~budget:(mib 1)
         ~used:(fun () -> 0)
         ~set_budget:(fun _ -> ())
         ~reclaim:(fun _ -> 0)
         ())
  in
  reg ~min_share:0.7 "a";
  Alcotest.check_raises "min_shares cannot oversubscribe"
    (Invalid_argument "Arbiter.register: cumulative min_share exceeds 1")
    (fun () -> reg ~min_share:0.4 "b");
  Alcotest.check_raises "weight must be positive"
    (Invalid_argument "Arbiter.register: weight must be > 0") (fun () ->
      reg ~weight:0. "c");
  Arbiter.start arb;
  Alcotest.check_raises "no registration after start"
    (Invalid_argument "Arbiter.register: arbiter already started") (fun () ->
      reg "d")

(* Property for the broker's pressure split: as long as the floors fit
   the brokered budget, every component keeps at least min_bytes and the
   targets never oversubscribe the budget. *)
let prop_broker_pressure_respects_floors =
  QCheck.Test.make ~name:"broker pressure split: floors kept, budget not oversold"
    ~count:100
    QCheck.(
      list_of_size Gen.(int_range 2 5) (pair (int_range 0 20) (int_range 1 60)))
    (fun comps ->
      let _, m, broker = make_broker ~total:(mib 100) () in
      let cs =
        List.mapi
          (fun i (min_mib, used_mib) ->
            let clerk =
              Dbmem.Manager.create_clerk m (Printf.sprintf "c%d" i)
            in
            let c =
              Broker.register broker
                ~name:(Printf.sprintf "c%d" i)
                ~clerk ~min_bytes:(mib min_mib) ()
            in
            (* Over-commit is fine for the split: demand what you like. *)
            Dbmem.Manager.alloc_exn clerk (min (mib used_mib) (Dbmem.Manager.available m));
            (c, mib min_mib))
          comps
      in
      Broker.tick broker;
      let budget = Broker.brokered_bytes broker in
      let floors = List.fold_left (fun a (_, f) -> a + f) 0 cs in
      (not (Broker.under_pressure broker))
      || floors > budget
      || List.fold_left (fun a (c, _) -> a + Broker.target c) 0 cs <= budget
         && List.for_all (fun (c, f) -> Broker.target c >= f) cs)

let suite =
  [
    ("trend linear series", `Quick, test_trend_linear_series);
    ("trend window slides", `Quick, test_trend_window_slides);
    ("trend prediction clamped", `Quick, test_trend_prediction_clamped);
    ("trend single sample", `Quick, test_trend_single_sample);
    ("trend empty", `Quick, test_trend_empty);
    ("trend constant series", `Quick, test_trend_constant_series);
    ("trend decreasing series", `Quick, test_trend_decreasing_series);
    ("trend two samples minimum", `Quick, test_trend_two_samples_minimum);
    ("trend backwards time rejected", `Quick, test_trend_backwards_time_rejected);
    ("broker no pressure no action", `Quick, test_broker_no_pressure_no_action);
    ("broker detects pressure from trend", `Quick, test_broker_detects_pressure_from_trend);
    ("broker targets within budget", `Quick, test_broker_targets_sum_within_budget);
    ("broker shrink verdict", `Quick, test_broker_shrink_verdict);
    ("broker min bytes floor", `Quick, test_broker_min_bytes_floor);
    ("broker notify callback", `Quick, test_broker_notify_callback_runs);
    ("broker hold-rate prediction", `Quick, test_broker_hold_rate_verdict);
    ("monitor wait stats", `Quick, test_monitor_wait_stats);
    ("broker periodic ticks", `Quick, test_broker_periodic_ticks);
    ("config default valid", `Quick, test_config_default_valid);
    ("config paper slot counts", `Quick, test_config_paper_slot_counts);
    ("config monotone thresholds", `Quick, test_config_monotone_thresholds);
    ("config invalid rejected", `Quick, test_config_invalid_rejected);
    ("dynamic threshold formula", `Quick, test_dynamic_threshold_formula);
    ("monitor blocks over slots", `Quick, test_monitor_blocks_over_slots);
    ("monitor timeout", `Quick, test_monitor_timeout);
    ("gov small query unthrottled", `Quick, test_gov_small_query_unthrottled);
    ("gov crossing thresholds", `Quick, test_gov_crossing_thresholds_acquires_monitors);
    ("gov population accounting", `Quick, test_gov_population_accounting);
    ("gov big serialized", `Quick, test_gov_big_serialized);
    ("gov timeout error", `Quick, test_gov_timeout_error);
    ("gov disabled never blocks", `Quick, test_gov_disabled_never_blocks);
    ("gov oom propagates", `Quick, test_gov_oom_propagates);
    ("gov memory freed on end", `Quick, test_gov_memory_freed_on_end);
    ("gov partial free", `Quick, test_gov_partial_free);
    ("gov dynamic threshold from broker", `Quick, test_gov_dynamic_threshold_from_broker);
    ("gov stop early signal", `Quick, test_gov_stop_early_signal);
    ("gov stop early requires enabled", `Quick, test_gov_stop_early_requires_enabled);
    ("gov progress priority", `Quick, test_gov_progress_priority);
    ("gov prevents mutual starvation", `Quick, test_gov_prevents_mutual_starvation);
    ("arbiter plan surplus weighted", `Quick, test_arbiter_plan_surplus_lends_weighted);
    ("arbiter plan scarcity floors", `Quick, test_arbiter_plan_scarcity_floors);
    ("arbiter plan caps", `Quick, test_arbiter_plan_caps);
    ("arbiter redistributes idle to pressured", `Quick, test_arbiter_redistributes_idle_to_pressured);
    ("arbiter reclaim on shrink", `Quick, test_arbiter_reclaim_on_shrink);
    ("arbiter register validation", `Quick, test_arbiter_register_validation);
    ("arbiter offline lends and claws back", `Quick, test_arbiter_offline_lends_and_claws_back);
    QCheck_alcotest.to_alcotest prop_arbiter_plan_invariants;
    QCheck_alcotest.to_alcotest prop_broker_pressure_respects_floors;
    QCheck_alcotest.to_alcotest prop_trend_slope_recovers_line;
    QCheck_alcotest.to_alcotest prop_gov_respects_slot_limits;
    QCheck_alcotest.to_alcotest prop_gov_thresholds_monotone;
  ]
