let () =
  Alcotest.run "dbsim"
    [
      ("sim", Test_sim.suite);
      ("dbmem", Test_dbmem.suite);
      ("qcore", Test_qcore.suite);
      ("relation", Test_relation.suite);
      ("rowexec", Test_rowexec.suite);
      ("optimizer", Test_optimizer.suite);
      ("bufpool", Test_bufpool.suite);
      ("plancache", Test_plancache.suite);
      ("execsim", Test_execsim.suite);
      ("workload", Test_workload.suite);
      ("server", Test_server.suite);
      ("obs", Test_obs.suite);
      ("trace", Test_trace.suite);
      ("fuzz", Test_fuzz.suite);
      ("chaos", Test_chaos.suite);
      ("health", Test_health.suite);
      ("misc", Test_misc.suite);
      ("parallel", Test_parallel.suite);
      ("shards", Test_shards.suite);
      ("midcache", Test_midcache.suite);
      ("storms", Test_storms.suite);
    ]
